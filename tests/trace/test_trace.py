"""Tests for repro.trace.trace."""

import numpy as np
import pytest

from repro.trace.reference import Reference, RefKind
from repro.trace.trace import Trace, TraceBuilder


def make_trace():
    return Trace([0x100, 0x104, 0x200, 0x100], [0, 0, 1, 2], name="t")


class TestConstruction:
    def test_length(self):
        assert len(make_trace()) == 4

    def test_empty(self):
        trace = Trace.empty("e")
        assert len(trace) == 0
        assert trace.name == "e"

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="same length"):
            Trace([1, 2], [0])

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError, match="invalid reference kind"):
            Trace([1], [7])

    def test_two_dimensional_rejected(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            Trace(np.zeros((2, 2), dtype=np.uint64), np.zeros((2, 2), dtype=np.uint8))

    def test_from_references(self):
        refs = [Reference(1, RefKind.IFETCH), Reference(2, RefKind.STORE)]
        trace = Trace.from_references(refs)
        assert list(trace) == refs

    def test_arrays_are_read_only(self):
        trace = make_trace()
        with pytest.raises(ValueError):
            trace.addrs[0] = 9


class TestSequenceProtocol:
    def test_iteration_yields_references(self):
        trace = make_trace()
        refs = list(trace)
        assert refs[0] == Reference(0x100, RefKind.IFETCH)
        assert refs[2] == Reference(0x200, RefKind.LOAD)
        assert refs[3] == Reference(0x100, RefKind.STORE)

    def test_indexing(self):
        trace = make_trace()
        assert trace[1] == Reference(0x104, RefKind.IFETCH)

    def test_negative_indexing(self):
        trace = make_trace()
        assert trace[-1] == Reference(0x100, RefKind.STORE)

    def test_slicing_returns_trace(self):
        trace = make_trace()
        head = trace[:2]
        assert isinstance(head, Trace)
        assert len(head) == 2
        assert head.name == "t"

    def test_pairs_are_plain_ints(self):
        pairs = list(make_trace().pairs())
        assert pairs[0] == (0x100, 0)
        assert all(isinstance(a, int) for a, _ in pairs)

    def test_equality(self):
        assert make_trace() == make_trace()

    def test_inequality(self):
        assert make_trace() != Trace([1], [0])

    def test_hash_consistency(self):
        assert hash(make_trace()) == hash(make_trace())

    def test_hash_is_cached(self):
        trace = make_trace()
        assert trace._hash is None
        first = hash(trace)
        assert trace._hash == first
        assert hash(trace) == first


class TestConvenience:
    def test_counts_by_kind(self):
        counts = make_trace().counts_by_kind()
        assert counts[RefKind.IFETCH] == 2
        assert counts[RefKind.LOAD] == 1
        assert counts[RefKind.STORE] == 1

    def test_footprint_counts_unique_addresses(self):
        assert make_trace().footprint() == 3

    def test_line_footprint(self):
        # 0x100 and 0x104 share a 16B line; 0x200 is separate.
        assert make_trace().line_footprint(16) == 2

    def test_lines_shifts_and_memoises(self):
        trace = make_trace()
        lines = trace.lines(4)
        assert lines.tolist() == [a >> 4 for a in trace.addrs.tolist()]
        assert trace.lines(4) is lines  # memoised per offset_bits
        assert not lines.flags.writeable
        assert trace.lines(2) is not lines

    def test_lines_rejects_negative_offset(self):
        with pytest.raises(ValueError):
            make_trace().lines(-1)

    def test_line_footprint_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            make_trace().line_footprint(12)

    def test_with_name(self):
        renamed = make_trace().with_name("other")
        assert renamed.name == "other"
        assert renamed == make_trace()


class TestTraceBuilder:
    def test_build_empty(self):
        assert len(TraceBuilder().build()) == 0

    def test_kind_helpers(self):
        builder = TraceBuilder()
        builder.ifetch(1)
        builder.load(2)
        builder.store(3)
        trace = builder.build("b")
        assert list(trace) == [
            Reference(1, RefKind.IFETCH),
            Reference(2, RefKind.LOAD),
            Reference(3, RefKind.STORE),
        ]
        assert trace.name == "b"

    def test_len_tracks_appends(self):
        builder = TraceBuilder()
        assert len(builder) == 0
        builder.ifetch(0)
        assert len(builder) == 1

    def test_extend(self):
        builder = TraceBuilder()
        builder.extend([Reference(1, RefKind.LOAD), Reference(2, RefKind.LOAD)])
        assert len(builder.build()) == 2

    def test_append_with_kind(self):
        builder = TraceBuilder()
        builder.append(7, RefKind.STORE)
        assert builder.build()[0] == Reference(7, RefKind.STORE)
