"""Tests for the din-format reader/writer."""

import io

import pytest

from repro.trace.io import dumps_din, load_din, loads_din, save_din
from repro.trace.reference import Reference, RefKind
from repro.trace.trace import Trace


def sample_trace():
    return Trace([0x100, 0x200, 0x300], [0, 1, 2], name="s")


class TestRoundTrip:
    def test_string_round_trip(self):
        trace = sample_trace()
        assert loads_din(dumps_din(trace)) == trace

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "trace.din"
        save_din(sample_trace(), path)
        assert load_din(path) == sample_trace()

    def test_file_object_round_trip(self):
        buffer = io.StringIO()
        save_din(sample_trace(), buffer)
        buffer.seek(0)
        assert load_din(buffer) == sample_trace()

    def test_name_is_attached(self):
        trace = loads_din("2 100\n", name="mine")
        assert trace.name == "mine"


class TestFormat:
    def test_labels_follow_din_convention(self):
        text = dumps_din(sample_trace())
        lines = text.strip().splitlines()
        # 0=read, 1=write, 2=ifetch; our trace is ifetch, load, store.
        assert lines[0].startswith("2 ")
        assert lines[1].startswith("0 ")
        assert lines[2].startswith("1 ")

    def test_addresses_are_hex(self):
        assert "100" in dumps_din(Trace([0x100], [0]))

    def test_blank_lines_ignored(self):
        trace = loads_din("\n2 100\n\n2 104\n")
        assert len(trace) == 2

    def test_comments_ignored(self):
        trace = loads_din("# header\n2 100\n")
        assert len(trace) == 1

    def test_ifetch_kind_restored(self):
        trace = loads_din("2 abc\n")
        assert trace[0] == Reference(0xABC, RefKind.IFETCH)


class TestErrors:
    def test_unknown_label(self):
        with pytest.raises(ValueError, match="unknown din label"):
            loads_din("9 100\n")

    def test_malformed_line(self):
        with pytest.raises(ValueError, match="expected"):
            loads_din("2 100 extra\n")

    def test_non_hex_address(self):
        with pytest.raises(ValueError, match="line 1"):
            loads_din("2 zzz\n")

    def test_non_integer_label(self):
        with pytest.raises(ValueError, match="line 1"):
            loads_din("x 100\n")

    def test_error_reports_line_number(self):
        with pytest.raises(ValueError, match="line 2"):
            loads_din("2 100\nbogus line here\n")

    def test_0x_prefixed_address_rejected(self):
        # int(x, 16) would happily accept this, but din does not.
        with pytest.raises(ValueError, match="malformed address"):
            loads_din("2 0x100\n")

    def test_sign_prefixed_address_rejected(self):
        with pytest.raises(ValueError, match="malformed address"):
            loads_din("2 -100\n")
        with pytest.raises(ValueError, match="malformed address"):
            loads_din("2 +100\n")

    def test_underscore_separated_address_rejected(self):
        with pytest.raises(ValueError, match="malformed address"):
            loads_din("2 1_00\n")

    def test_sign_prefixed_label_rejected(self):
        with pytest.raises(ValueError, match="malformed din label"):
            loads_din("+2 100\n")
        with pytest.raises(ValueError, match="malformed din label"):
            loads_din("-1 100\n")

    def test_plain_hex_still_accepted(self):
        trace = loads_din("2 00ff\n")
        assert trace[0].addr == 0xFF


class TestGzip:
    def test_gz_round_trip(self, tmp_path):
        path = tmp_path / "trace.din.gz"
        save_din(sample_trace(), path)
        assert load_din(path) == sample_trace()

    def test_gz_file_is_compressed(self, tmp_path):
        import gzip

        path = tmp_path / "trace.din.gz"
        save_din(sample_trace(), path)
        with gzip.open(path, "rt") as handle:
            assert handle.readline().startswith("2 ")

    def test_gz_smaller_for_long_traces(self, tmp_path):
        trace = Trace([0x1000 + 4 * (i % 50) for i in range(5000)], [0] * 5000)
        plain = tmp_path / "t.din"
        packed = tmp_path / "t.din.gz"
        save_din(trace, plain)
        save_din(trace, packed)
        assert packed.stat().st_size < plain.stat().st_size / 5

    def test_corrupt_gz_names_the_path(self, tmp_path):
        path = tmp_path / "broken.din.gz"
        path.write_bytes(b"this is not gzip data")
        with pytest.raises(ValueError, match="broken.din.gz"):
            load_din(path)

    def test_truncated_gz_raises_value_error(self, tmp_path):
        """Regression: a gzip stream cut mid-member used to escape as a
        raw EOFError, breaking the documented ValueError contract."""
        trace = Trace([0x1000 + 4 * (i % 50) for i in range(5000)], [0] * 5000)
        path = tmp_path / "cut.din.gz"
        save_din(trace, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ValueError, match="cut.din.gz"):
            load_din(path)

    def test_gz_with_corrupt_deflate_body_raises_value_error(self, tmp_path):
        """A valid gzip header over a mangled deflate body surfaces as
        zlib.error inside the reader; that too must become ValueError."""
        trace = Trace([0x1000 + 4 * (i % 50) for i in range(5000)], [0] * 5000)
        path = tmp_path / "mangled.din.gz"
        save_din(trace, path)
        data = bytearray(path.read_bytes())
        for i in range(20, min(60, len(data))):  # stomp past the header
            data[i] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="mangled.din.gz"):
            load_din(path)
