"""Tests for repro.trace.reference."""

import pytest

from repro.trace.reference import INSTRUCTION_SIZE, Reference, RefKind


class TestRefKind:
    def test_values_are_stable(self):
        assert RefKind.IFETCH == 0
        assert RefKind.LOAD == 1
        assert RefKind.STORE == 2

    def test_ifetch_is_instruction(self):
        assert RefKind.IFETCH.is_instruction

    def test_load_is_not_instruction(self):
        assert not RefKind.LOAD.is_instruction

    def test_store_is_not_instruction(self):
        assert not RefKind.STORE.is_instruction

    def test_load_is_data(self):
        assert RefKind.LOAD.is_data

    def test_store_is_data(self):
        assert RefKind.STORE.is_data

    def test_ifetch_is_not_data(self):
        assert not RefKind.IFETCH.is_data

    def test_only_store_is_write(self):
        assert RefKind.STORE.is_write
        assert not RefKind.LOAD.is_write
        assert not RefKind.IFETCH.is_write

    def test_kinds_are_ints(self):
        # Simulators rely on the IntEnum property for cheap dispatch.
        assert int(RefKind.STORE) == 2
        assert RefKind(1) is RefKind.LOAD


class TestReference:
    def test_fields(self):
        ref = Reference(0x1234, RefKind.LOAD)
        assert ref.addr == 0x1234
        assert ref.kind is RefKind.LOAD

    def test_line_alignment(self):
        ref = Reference(0x1237, RefKind.IFETCH)
        assert ref.line(16) == 0x1230

    def test_line_of_aligned_address_is_identity(self):
        ref = Reference(0x1000, RefKind.IFETCH)
        assert ref.line(16) == 0x1000

    def test_line_size_one_word(self):
        ref = Reference(0x1001, RefKind.IFETCH)
        assert ref.line(4) == 0x1000

    def test_is_a_tuple(self):
        addr, kind = Reference(5, RefKind.STORE)
        assert (addr, kind) == (5, RefKind.STORE)

    def test_instruction_size_is_four(self):
        assert INSTRUCTION_SIZE == 4
