"""Tests for trace statistics (summaries, working sets, reuse distance)."""

import pytest

from repro.trace.stats import (
    lru_miss_rate_from_distances,
    reuse_distance_histogram,
    reuse_distances,
    summarize,
    working_set_sizes,
)
from repro.trace.trace import Trace


class TestSummarize:
    def test_counts(self):
        trace = Trace([0, 4, 100, 200], [0, 0, 1, 2], name="x")
        summary = summarize(trace)
        assert summary.length == 4
        assert summary.instruction_refs == 2
        assert summary.load_refs == 1
        assert summary.store_refs == 1
        assert summary.data_refs == 2

    def test_footprints(self):
        trace = Trace([0, 0, 4, 100], [0, 0, 0, 1])
        summary = summarize(trace)
        assert summary.instruction_footprint_bytes == 8
        assert summary.data_footprint_bytes == 4
        assert summary.footprint_bytes == 12

    def test_name_propagates(self):
        assert summarize(Trace([1], [0], name="n")).name == "n"


class TestWorkingSets:
    def test_non_overlapping_windows(self):
        trace = Trace([0, 4, 0, 4, 8, 12], [0] * 6)
        sizes = working_set_sizes(trace, window=2, line_size=4)
        assert sizes == [2, 2, 2]

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            working_set_sizes(Trace([0], [0]), window=0)

    def test_last_partial_window(self):
        trace = Trace([0, 4, 8], [0] * 3)
        sizes = working_set_sizes(trace, window=2, line_size=4)
        assert sizes == [2, 1]


class TestReuseDistances:
    def test_first_use_is_minus_one(self):
        distances = reuse_distances(Trace([0, 4, 8], [0] * 3))
        assert list(distances) == [-1, -1, -1]

    def test_immediate_reuse_is_zero(self):
        distances = reuse_distances(Trace([0, 0], [0, 0]))
        assert list(distances) == [-1, 0]

    def test_distance_counts_distinct_lines(self):
        # 0, 4, 8, 0 at 4B lines: the second 0 has two distinct lines
        # (4 and 8) between its uses.
        distances = reuse_distances(Trace([0, 4, 8, 0], [0] * 4))
        assert distances[3] == 2

    def test_repeated_intermediate_counts_once(self):
        # 0, 4, 4, 0 -> only one distinct line between the uses of 0.
        distances = reuse_distances(Trace([0, 4, 4, 0], [0] * 4))
        assert distances[3] == 1

    def test_line_granularity(self):
        # 0 and 4 share a 16B line, so reuse of 0 sees no intermediates.
        distances = reuse_distances(Trace([0, 4, 0], [0] * 3), line_size=16)
        assert list(distances) == [-1, 0, 0]

    def test_histogram(self):
        hist = reuse_distance_histogram(Trace([0, 4, 0, 4], [0] * 4))
        assert hist[-1] == 2
        assert hist[1] == 2

    def test_histogram_clamping(self):
        trace = Trace([0, 4, 8, 12, 0], [0] * 5)
        hist = reuse_distance_histogram(trace, max_distance=2)
        assert hist[2] == 1  # the distance-3 reuse is clamped to 2


class TestLRUCrossCheck:
    def test_matches_fully_associative_simulation(self):
        from repro.caches.set_associative import FullyAssociativeCache

        addrs = [0, 4, 8, 12, 0, 4, 16, 0, 20, 8] * 5
        trace = Trace(addrs, [0] * len(addrs))
        capacity_lines = 4
        analytic = lru_miss_rate_from_distances(trace, capacity_lines, line_size=4)
        cache = FullyAssociativeCache(capacity_lines * 4, 4)
        simulated = cache.simulate(trace).miss_rate
        assert analytic == pytest.approx(simulated)

    def test_empty_trace(self):
        assert lru_miss_rate_from_distances(Trace.empty(), 4) == 0.0

    def test_everything_misses_with_capacity_zero_reuse(self):
        trace = Trace([0, 8, 16, 24], [0] * 4)
        assert lru_miss_rate_from_distances(trace, 2) == 1.0
