"""Tests for trace transforms."""

import pytest

from repro.trace.reference import Reference, RefKind
from repro.trace.trace import Trace
from repro.trace.transforms import (
    collapse_sequential_lines,
    concatenate,
    filter_kinds,
    interleave,
    line_addresses,
    only_data,
    only_instructions,
    rebase,
    truncate,
)


def mixed_trace():
    return Trace(
        [0x10, 0x14, 0x1000, 0x18, 0x2000],
        [0, 0, 1, 0, 2],
        name="m",
    )


class TestFiltering:
    def test_only_instructions(self):
        instr = only_instructions(mixed_trace())
        assert len(instr) == 3
        assert all(r.kind is RefKind.IFETCH for r in instr)

    def test_only_data(self):
        data = only_data(mixed_trace())
        assert [r.kind for r in data] == [RefKind.LOAD, RefKind.STORE]

    def test_filter_preserves_order(self):
        instr = only_instructions(mixed_trace())
        assert [r.addr for r in instr] == [0x10, 0x14, 0x18]

    def test_filter_kinds_custom(self):
        stores = filter_kinds(mixed_trace(), [RefKind.STORE])
        assert [r.addr for r in stores] == [0x2000]

    def test_filter_preserves_name(self):
        assert only_data(mixed_trace()).name == "m"


class TestTruncateConcat:
    def test_truncate(self):
        assert len(truncate(mixed_trace(), 2)) == 2

    def test_truncate_beyond_length(self):
        assert len(truncate(mixed_trace(), 100)) == 5

    def test_truncate_negative_rejected(self):
        with pytest.raises(ValueError):
            truncate(mixed_trace(), -1)

    def test_concatenate(self):
        joined = concatenate([mixed_trace(), mixed_trace()])
        assert len(joined) == 10
        assert joined[5] == mixed_trace()[0]

    def test_concatenate_empty_list(self):
        assert len(concatenate([])) == 0

    def test_concatenate_names(self):
        assert concatenate([mixed_trace()], name="x").name == "x"
        assert concatenate([mixed_trace()]).name == "m"


class TestRebase:
    def test_shifts_addresses(self):
        shifted = rebase(mixed_trace(), 0x100)
        assert shifted[0].addr == 0x110

    def test_negative_shift(self):
        shifted = rebase(mixed_trace(), -0x10)
        assert shifted[0].addr == 0

    def test_underflow_rejected(self):
        with pytest.raises(ValueError):
            rebase(mixed_trace(), -0x1000000)

    def test_kinds_unchanged(self):
        shifted = rebase(mixed_trace(), 4)
        assert list(shifted.kinds) == list(mixed_trace().kinds)


class TestLineAddresses:
    def test_divides_by_line_size(self):
        lines = line_addresses(Trace([0, 4, 8, 12], [0, 0, 0, 0]), 8)
        assert list(lines) == [0, 0, 1, 1]

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            line_addresses(mixed_trace(), 3)


class TestCollapseSequentialLines:
    def test_merges_runs(self):
        trace = Trace([0, 4, 8, 16, 20, 0], [0] * 6)
        collapsed = collapse_sequential_lines(trace, 16)
        # lines: 0,0,0,1,1,0 -> events at 0, 1, 0
        assert [r.addr for r in collapsed] == [0, 16, 0]

    def test_empty_trace(self):
        trace = Trace.empty()
        assert len(collapse_sequential_lines(trace, 16)) == 0

    def test_single_word_lines_merge_immediate_repeats_only(self):
        trace = Trace([0, 0, 4, 0], [0] * 4)
        collapsed = collapse_sequential_lines(trace, 4)
        assert [r.addr for r in collapsed] == [0, 4, 0]

    def test_kind_of_run_head_is_kept(self):
        trace = Trace([0, 4], [int(RefKind.STORE), int(RefKind.LOAD)])
        collapsed = collapse_sequential_lines(trace, 16)
        assert collapsed[0].kind is RefKind.STORE

    def test_addresses_are_line_aligned(self):
        trace = Trace([20], [0])
        collapsed = collapse_sequential_lines(trace, 16)
        assert collapsed[0].addr == 16


class TestInterleave:
    def test_round_robin(self):
        a = Trace([1, 2], [0, 0])
        b = Trace([10, 20], [1, 1])
        merged = interleave([a, b])
        assert [r.addr for r in merged] == [1, 10, 2, 20]

    def test_uneven_lengths(self):
        a = Trace([1, 2, 3], [0, 0, 0])
        b = Trace([10], [1])
        merged = interleave([a, b])
        assert [r.addr for r in merged] == [1, 10, 2, 3]

    def test_empty_inputs(self):
        assert len(interleave([])) == 0


class TestTimeshare:
    def _traces(self):
        from repro.trace.transforms import timeshare

        a = Trace([1, 2, 3, 4], [0] * 4, name="a")
        b = Trace([10, 20], [1] * 2, name="b")
        return timeshare, a, b

    def test_quantum_slicing(self):
        timeshare, a, b = self._traces()
        merged = timeshare([a, b], quantum=2)
        assert [r.addr for r in merged] == [1, 2, 10, 20, 3, 4]

    def test_kinds_preserved(self):
        timeshare, a, b = self._traces()
        merged = timeshare([a, b], quantum=2)
        assert [int(k) for k in merged.kinds] == [0, 0, 1, 1, 0, 0]

    def test_exhausted_trace_drops_out(self):
        timeshare, a, b = self._traces()
        merged = timeshare([a, b], quantum=1)
        assert [r.addr for r in merged] == [1, 10, 2, 20, 3, 4]

    def test_total_length_conserved(self):
        timeshare, a, b = self._traces()
        assert len(timeshare([a, b], quantum=3)) == 6

    def test_quantum_must_be_positive(self):
        timeshare, a, b = self._traces()
        with pytest.raises(ValueError):
            timeshare([a, b], quantum=0)

    def test_single_trace_passthrough(self):
        timeshare, a, _ = self._traces()
        assert timeshare([a], quantum=2) == a.with_name("")

    def test_name(self):
        timeshare, a, b = self._traces()
        assert timeshare([a, b], quantum=2, name="shared").name == "shared"
