"""Tests for repro.env — the one home for environment parsing."""

import pytest

from repro import env


class TestTraceScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_SCALE", raising=False)
        assert env.trace_scale() == 1.0
        assert env.max_refs() == env.BASE_MAX_REFS

    def test_scaled_budget(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SCALE", "0.25")
        assert env.max_refs() == env.BASE_MAX_REFS // 4

    def test_bad_value_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SCALE", "banana")
        with pytest.raises(ValueError, match="REPRO_TRACE_SCALE"):
            env.trace_scale()

    def test_non_positive_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SCALE", "-1")
        with pytest.raises(ValueError, match="positive"):
            env.trace_scale()


class TestWorkers:
    def test_unset_means_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert env.env_workers() is None

    def test_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert env.env_workers() == 4

    def test_bad_value_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            env.env_workers()

    def test_zero_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ValueError, match="at least 1"):
            env.env_workers()


class TestLogLevel:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG_LEVEL", raising=False)
        assert env.log_level() == "info"

    @pytest.mark.parametrize("raw", ["debug", "info", "warning", "error", "quiet"])
    def test_every_level_accepted(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_LOG_LEVEL", raw)
        assert env.log_level() == raw

    def test_normalised(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "  DEBUG ")
        assert env.log_level() == "debug"

    def test_bad_value_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "loud")
        with pytest.raises(ValueError, match="REPRO_LOG_LEVEL"):
            env.log_level()


class TestProfileEnabled:
    def test_unset_means_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert env.profile_enabled() is False

    @pytest.mark.parametrize("raw", ["1", "true", "YES", " on "])
    def test_truthy(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_PROFILE", raw)
        assert env.profile_enabled() is True

    @pytest.mark.parametrize("raw", ["0", "false", "No", "off", ""])
    def test_falsy(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_PROFILE", raw)
        assert env.profile_enabled() is False

    def test_bad_value_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "maybe")
        with pytest.raises(ValueError, match="REPRO_PROFILE"):
            env.profile_enabled()


class TestValidate:
    def test_ok(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SCALE", "0.5")
        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.setenv("REPRO_LOG_LEVEL", "debug")
        monkeypatch.setenv("REPRO_PROFILE", "1")
        env.validate()  # no exception

    def test_catches_either_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "banana")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            env.validate()
        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.setenv("REPRO_TRACE_SCALE", "zero")
        with pytest.raises(ValueError, match="REPRO_TRACE_SCALE"):
            env.validate()

    def test_catches_observability_variables(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "loud")
        with pytest.raises(ValueError, match="REPRO_LOG_LEVEL"):
            env.validate()
        monkeypatch.setenv("REPRO_LOG_LEVEL", "info")
        monkeypatch.setenv("REPRO_PROFILE", "maybe")
        with pytest.raises(ValueError, match="REPRO_PROFILE"):
            env.validate()


class TestSingleSourceOfTruth:
    def test_common_reexports_env(self):
        from repro.experiments import common

        assert common.trace_scale is env.trace_scale
        assert common.max_refs is env.max_refs
        assert common.BASE_MAX_REFS is env.BASE_MAX_REFS

    def test_parallel_uses_env(self):
        from repro.perf import parallel

        assert parallel.env_workers is env.env_workers
