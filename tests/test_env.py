"""Tests for repro.env — the one home for environment parsing."""

import pytest

from repro import env


class TestTraceScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_SCALE", raising=False)
        assert env.trace_scale() == 1.0
        assert env.max_refs() == env.BASE_MAX_REFS

    def test_scaled_budget(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SCALE", "0.25")
        assert env.max_refs() == env.BASE_MAX_REFS // 4

    def test_bad_value_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SCALE", "banana")
        with pytest.raises(ValueError, match="REPRO_TRACE_SCALE"):
            env.trace_scale()

    def test_non_positive_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SCALE", "-1")
        with pytest.raises(ValueError, match="positive"):
            env.trace_scale()


class TestWorkers:
    def test_unset_means_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert env.env_workers() is None

    def test_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert env.env_workers() == 4

    def test_bad_value_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            env.env_workers()

    def test_zero_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ValueError, match="at least 1"):
            env.env_workers()


class TestValidate:
    def test_ok(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SCALE", "0.5")
        monkeypatch.setenv("REPRO_WORKERS", "2")
        env.validate()  # no exception

    def test_catches_either_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "banana")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            env.validate()
        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.setenv("REPRO_TRACE_SCALE", "zero")
        with pytest.raises(ValueError, match="REPRO_TRACE_SCALE"):
            env.validate()


class TestSingleSourceOfTruth:
    def test_common_reexports_env(self):
        from repro.experiments import common

        assert common.trace_scale is env.trace_scale
        assert common.max_refs is env.max_refs
        assert common.BASE_MAX_REFS is env.BASE_MAX_REFS

    def test_parallel_uses_env(self):
        from repro.perf import parallel

        assert parallel.env_workers is env.env_workers
