"""Tests for repro.env — the one home for environment parsing."""

import pytest

from repro import env


class TestTraceScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_SCALE", raising=False)
        assert env.trace_scale() == 1.0
        assert env.max_refs() == env.BASE_MAX_REFS

    def test_scaled_budget(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SCALE", "0.25")
        assert env.max_refs() == env.BASE_MAX_REFS // 4

    def test_bad_value_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SCALE", "banana")
        with pytest.raises(ValueError, match="REPRO_TRACE_SCALE"):
            env.trace_scale()

    def test_non_positive_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SCALE", "-1")
        with pytest.raises(ValueError, match="positive"):
            env.trace_scale()


class TestWorkers:
    def test_unset_means_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert env.env_workers() is None

    def test_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert env.env_workers() == 4

    def test_bad_value_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            env.env_workers()

    def test_zero_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ValueError, match="at least 1"):
            env.env_workers()


class TestLogLevel:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG_LEVEL", raising=False)
        assert env.log_level() == "info"

    @pytest.mark.parametrize("raw", ["debug", "info", "warning", "error", "quiet"])
    def test_every_level_accepted(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_LOG_LEVEL", raw)
        assert env.log_level() == raw

    def test_normalised(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "  DEBUG ")
        assert env.log_level() == "debug"

    def test_bad_value_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "loud")
        with pytest.raises(ValueError, match="REPRO_LOG_LEVEL"):
            env.log_level()


class TestProfileEnabled:
    def test_unset_means_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert env.profile_enabled() is False

    @pytest.mark.parametrize("raw", ["1", "true", "YES", " on "])
    def test_truthy(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_PROFILE", raw)
        assert env.profile_enabled() is True

    @pytest.mark.parametrize("raw", ["0", "false", "No", "off", ""])
    def test_falsy(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_PROFILE", raw)
        assert env.profile_enabled() is False

    def test_bad_value_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "maybe")
        with pytest.raises(ValueError, match="REPRO_PROFILE"):
            env.profile_enabled()


class TestValidate:
    def test_ok(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SCALE", "0.5")
        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.setenv("REPRO_LOG_LEVEL", "debug")
        monkeypatch.setenv("REPRO_PROFILE", "1")
        env.validate()  # no exception

    def test_catches_either_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "banana")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            env.validate()
        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.setenv("REPRO_TRACE_SCALE", "zero")
        with pytest.raises(ValueError, match="REPRO_TRACE_SCALE"):
            env.validate()

    def test_catches_observability_variables(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "loud")
        with pytest.raises(ValueError, match="REPRO_LOG_LEVEL"):
            env.validate()
        monkeypatch.setenv("REPRO_LOG_LEVEL", "info")
        monkeypatch.setenv("REPRO_PROFILE", "maybe")
        with pytest.raises(ValueError, match="REPRO_PROFILE"):
            env.validate()


class TestSingleSourceOfTruth:
    def test_common_reexports_env(self):
        from repro.experiments import common

        assert common.trace_scale is env.trace_scale
        assert common.max_refs is env.max_refs
        assert common.BASE_MAX_REFS is env.BASE_MAX_REFS

    def test_parallel_uses_env(self):
        from repro.perf import parallel

        assert parallel.env_workers is env.env_workers


class TestMaxRefsFloor:
    def test_tiny_scale_floors_at_one_reference(self, monkeypatch):
        # 1e-9 * 200_000 truncates to 0; an empty trace budget breaks
        # every downstream sweep, so the floor is 1.
        monkeypatch.setenv("REPRO_TRACE_SCALE", "0.000000001")
        assert env.max_refs() == 1

    def test_scale_just_below_one_ref_per_trace(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SCALE", str(0.5 / env.BASE_MAX_REFS))
        assert env.max_refs() == 1

    def test_normal_scales_unaffected_by_the_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SCALE", "0.01")
        assert env.max_refs() == env.BASE_MAX_REFS // 100


class TestBackend:
    def test_unset_means_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert env.env_backend() is None

    def test_blank_means_none(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "  ")
        assert env.env_backend() is None

    @pytest.mark.parametrize("raw", ["inline", "local-pool", "fleet"])
    def test_every_backend_accepted(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_BACKEND", raw)
        assert env.env_backend() == raw

    def test_normalised(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "  FLEET ")
        assert env.env_backend() == "fleet"

    def test_bad_value_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "threads")
        with pytest.raises(ValueError, match="REPRO_BACKEND"):
            env.env_backend()

    def test_runtime_registered_backend_accepted(self, monkeypatch):
        from repro.perf.backends import BACKENDS, SweepBackend, register_backend

        class CustomBackend(SweepBackend):
            name = "custom-env-test"

        register_backend(CustomBackend)
        try:
            monkeypatch.setenv("REPRO_BACKEND", "custom-env-test")
            assert env.env_backend() == "custom-env-test"
        finally:
            BACKENDS.pop("custom-env-test", None)

    def test_validate_covers_it(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "threads")
        with pytest.raises(ValueError, match="REPRO_BACKEND"):
            env.validate()


class TestFleetHosts:
    def test_unset_means_empty(self, monkeypatch):
        monkeypatch.delenv("REPRO_FLEET_HOSTS", raising=False)
        assert env.env_fleet_hosts() == []

    def test_blank_means_empty(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_HOSTS", "  ")
        assert env.env_fleet_hosts() == []

    def test_parsed_and_stripped(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_HOSTS", "local, user@box1 ,box2")
        assert env.env_fleet_hosts() == ["local", "user@box1", "box2"]

    def test_command_template_entry(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FLEET_HOSTS", "python3 -m repro.cli worker"
        )
        assert env.env_fleet_hosts() == ["python3 -m repro.cli worker"]

    def test_blank_entry_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_HOSTS", "local,,local")
        with pytest.raises(ValueError, match="REPRO_FLEET_HOSTS"):
            env.env_fleet_hosts()

    def test_trailing_comma_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_HOSTS", "local,")
        with pytest.raises(ValueError, match="non-empty"):
            env.env_fleet_hosts()

    def test_validate_covers_it(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_HOSTS", ",")
        with pytest.raises(ValueError, match="REPRO_FLEET_HOSTS"):
            env.validate()


class TestServeKnobs:
    def test_defaults(self, monkeypatch):
        for name in ("REPRO_SERVE_HOST", "REPRO_SERVE_PORT",
                     "REPRO_SERVE_STORE", "REPRO_SERVE_URL"):
            monkeypatch.delenv(name, raising=False)
        assert env.serve_host() == env.DEFAULT_SERVE_HOST
        assert env.serve_port() == env.DEFAULT_SERVE_PORT
        assert env.serve_store() is None
        assert env.serve_url() == (
            f"http://{env.DEFAULT_SERVE_HOST}:{env.DEFAULT_SERVE_PORT}"
        )

    def test_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_HOST", "0.0.0.0")
        monkeypatch.setenv("REPRO_SERVE_PORT", "0")
        monkeypatch.setenv("REPRO_SERVE_STORE", "/tmp/results")
        assert env.serve_host() == "0.0.0.0"
        assert env.serve_port() == 0
        assert env.serve_store() == "/tmp/results"

    def test_url_overrides_host_and_port(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_URL", "http://example.test:9999/")
        assert env.serve_url() == "http://example.test:9999"

    def test_bad_port_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_PORT", "http")
        with pytest.raises(ValueError, match="REPRO_SERVE_PORT"):
            env.serve_port()
        monkeypatch.setenv("REPRO_SERVE_PORT", "70000")
        with pytest.raises(ValueError, match="0..65535"):
            env.serve_port()

    def test_empty_host_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_HOST", "  ")
        with pytest.raises(ValueError, match="REPRO_SERVE_HOST"):
            env.serve_host()

    def test_empty_store_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_STORE", "")
        with pytest.raises(ValueError, match="REPRO_SERVE_STORE"):
            env.serve_store()

    def test_non_http_url_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_URL", "ftp://example.test")
        with pytest.raises(ValueError, match="REPRO_SERVE_URL"):
            env.serve_url()

    def test_validate_covers_the_serve_variables(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_PORT", "banana")
        with pytest.raises(ValueError, match="REPRO_SERVE_PORT"):
            env.validate()
        monkeypatch.setenv("REPRO_SERVE_PORT", "8377")
        monkeypatch.setenv("REPRO_SERVE_URL", "gopher://x")
        with pytest.raises(ValueError, match="REPRO_SERVE_URL"):
            env.validate()


class TestServeNegTtl:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_NEG_TTL", raising=False)
        assert env.serve_neg_ttl() == env.DEFAULT_SERVE_NEG_TTL

    def test_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_NEG_TTL", "12.5")
        assert env.serve_neg_ttl() == 12.5

    def test_zero_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_NEG_TTL", "0")
        assert env.serve_neg_ttl() == 0.0

    def test_bad_value_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_NEG_TTL", "soon")
        with pytest.raises(ValueError, match="REPRO_SERVE_NEG_TTL"):
            env.serve_neg_ttl()

    @pytest.mark.parametrize("raw", ["-1", "-0.5", "nan"])
    def test_negative_and_nan_rejected(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_SERVE_NEG_TTL", raw)
        with pytest.raises(ValueError, match=">= 0"):
            env.serve_neg_ttl()

    def test_validate_covers_it(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_NEG_TTL", "whenever")
        with pytest.raises(ValueError, match="REPRO_SERVE_NEG_TTL"):
            env.validate()
