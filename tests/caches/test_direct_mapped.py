"""Tests for the conventional direct-mapped cache."""

import pytest

from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.geometry import CacheGeometry
from repro.trace.trace import Trace


def small_cache(size=64, line=4, **kwargs):
    return DirectMappedCache(CacheGeometry(size, line), **kwargs)


class TestBasics:
    def test_requires_direct_mapped_geometry(self):
        with pytest.raises(ValueError):
            DirectMappedCache(CacheGeometry(64, 4, associativity=2))

    def test_first_access_is_cold_miss(self):
        cache = small_cache()
        result = cache.access(0)
        assert result.miss
        assert cache.stats.cold_misses == 1

    def test_repeat_access_hits(self):
        cache = small_cache()
        cache.access(0)
        assert cache.access(0).hit

    def test_same_line_different_word_hits(self):
        cache = DirectMappedCache(CacheGeometry(64, 16))
        cache.access(0)
        assert cache.access(4).hit

    def test_conflicting_access_evicts(self):
        cache = small_cache(size=64)
        cache.access(0)
        result = cache.access(64)  # same set
        assert result.miss
        assert result.evicted_line == 0
        assert cache.stats.evictions == 1

    def test_after_eviction_original_misses(self):
        cache = small_cache(size=64)
        cache.access(0)
        cache.access(64)
        assert cache.access(0).miss

    def test_distinct_sets_do_not_interfere(self):
        cache = small_cache(size=64)
        cache.access(0)
        cache.access(4)
        assert cache.access(0).hit
        assert cache.access(4).hit

    def test_resident_lines(self):
        cache = small_cache()
        cache.access(0)
        cache.access(4)
        assert cache.resident_lines() == {0, 1}

    def test_contains(self):
        cache = small_cache()
        cache.access(8)
        assert cache.contains(8)
        assert not cache.contains(16)

    def test_contains_line(self):
        cache = small_cache()
        cache.access(8)
        assert cache.contains_line(2)
        assert not cache.contains_line(3)

    def test_reset_clears_contents_and_stats(self):
        cache = small_cache()
        cache.access(0)
        cache.reset()
        assert cache.stats.accesses == 0
        assert not cache.contains(0)


class TestAllocateOnMiss:
    def test_no_allocate_mode_never_stores(self):
        cache = small_cache(allocate_on_miss=False)
        cache.access(0)
        assert cache.access(0).miss
        assert cache.stats.bypasses == 2

    def test_install_line_fills_frame(self):
        cache = small_cache(allocate_on_miss=False)
        displaced = cache.install_line(0)
        assert displaced is None
        assert cache.access(0).hit

    def test_install_line_reports_displacement(self):
        cache = small_cache(size=64)
        cache.install_line(0)
        assert cache.install_line(16) == 0  # 16 lines -> same set 0

    def test_install_same_line_reports_none(self):
        cache = small_cache()
        cache.install_line(3)
        assert cache.install_line(3) is None

    def test_install_does_not_touch_stats(self):
        cache = small_cache()
        cache.install_line(5)
        assert cache.stats.accesses == 0


class TestSimulate:
    def test_stats_are_consistent(self):
        cache = small_cache(size=64)
        trace = Trace([0, 64, 0, 64, 4, 8], [0] * 6)
        stats = cache.simulate(trace)
        stats.check()
        assert stats.accesses == 6

    def test_thrashing_pair_always_misses(self):
        cache = small_cache(size=64)
        trace = Trace([0, 64] * 10, [0] * 20)
        stats = cache.simulate(trace)
        assert stats.misses == 20

    def test_sequential_within_line_hits(self):
        cache = DirectMappedCache(CacheGeometry(64, 16))
        trace = Trace([0, 4, 8, 12], [0] * 4)
        stats = cache.simulate(trace)
        assert stats.misses == 1
        assert stats.hits == 3

    @pytest.mark.parametrize("allocate", [True, False])
    def test_stats_fast_path_matches_access_loop(self, allocate):
        # simulate() uses a stats-only loop; it must agree with the
        # allocating per-reference access() path, including the final
        # tag array and when resumed on a warm cache.
        import random

        rng = random.Random(7)
        addrs = [rng.randrange(64) * 4 for _ in range(500)]
        trace = Trace(addrs, [0] * len(addrs))
        looped = small_cache(size=128, allocate_on_miss=allocate)
        for addr in addrs:
            looped.access(addr)
        fast = small_cache(size=128, allocate_on_miss=allocate)
        fast.simulate(trace)
        fast.simulate(trace)  # warm resume
        for addr in addrs:
            looped.access(addr)
        assert fast.stats == looped.stats
        assert fast.resident_lines() == looped.resident_lines()
