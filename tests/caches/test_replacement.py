"""Tests for replacement policies."""

import pytest

from repro.caches.replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    make_policy,
)


class TestLRU:
    def test_initial_victim_is_way_zero(self):
        assert LRUPolicy(4).victim() == 0

    def test_touch_moves_to_mru(self):
        policy = LRUPolicy(3)
        policy.touch(0)
        assert policy.victim() == 1

    def test_fill_counts_as_use(self):
        policy = LRUPolicy(2)
        policy.fill(0)
        assert policy.victim() == 1

    def test_stack_order(self):
        policy = LRUPolicy(3)
        policy.touch(2)
        policy.touch(0)
        policy.touch(1)
        assert policy.recency_order() == [2, 0, 1]

    def test_repeated_touch_is_idempotent_on_order(self):
        policy = LRUPolicy(3)
        policy.touch(1)
        policy.touch(1)
        assert policy.victim() == 0


class TestFIFO:
    def test_round_robin_on_fills(self):
        policy = FIFOPolicy(3)
        assert policy.victim() == 0
        policy.fill(0)
        assert policy.victim() == 1
        policy.fill(1)
        assert policy.victim() == 2
        policy.fill(2)
        assert policy.victim() == 0

    def test_touch_does_not_reorder(self):
        policy = FIFOPolicy(2)
        policy.fill(0)
        policy.touch(0)
        assert policy.victim() == 1

    def test_out_of_order_fill_keeps_pointer(self):
        policy = FIFOPolicy(3)
        policy.fill(2)  # filling a non-pointer way does not advance
        assert policy.victim() == 0


class TestRandom:
    def test_victims_in_range(self):
        policy = RandomPolicy(4, seed=7)
        for _ in range(50):
            assert 0 <= policy.victim() < 4

    def test_deterministic_for_seed(self):
        a = [RandomPolicy(8, seed=3).victim() for _ in range(10)]
        b = [RandomPolicy(8, seed=3).victim() for _ in range(10)]
        # Fresh policies with the same seed give the same first victim.
        assert a[0] == b[0]

    def test_touch_and_fill_are_noops(self):
        policy = RandomPolicy(4, seed=0)
        policy.touch(1)
        policy.fill(2)  # must not raise


class TestFactory:
    def test_known_names(self):
        assert isinstance(make_policy("lru", 2), LRUPolicy)
        assert isinstance(make_policy("fifo", 2), FIFOPolicy)
        assert isinstance(make_policy("random", 2), RandomPolicy)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown replacement policy"):
            make_policy("plru", 2)
