"""Tests for the set-associative cache."""

import pytest

from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.geometry import CacheGeometry
from repro.caches.set_associative import FullyAssociativeCache, SetAssociativeCache
from repro.trace.trace import Trace


def two_way(size=128, line=4):
    return SetAssociativeCache(CacheGeometry(size, line, associativity=2))


class TestBasics:
    def test_two_conflicting_lines_coexist(self):
        cache = two_way(size=128)  # 16 sets of 2
        a, b = 0, 128  # same set in a direct-mapped 128B cache... and here
        cache.access(a)
        cache.access(b)
        assert cache.access(a).hit
        assert cache.access(b).hit

    def test_third_conflicting_line_evicts_lru(self):
        cache = two_way(size=128)
        step = 16 * 4  # one set stride (16 sets, 4B lines)
        cache.access(0)
        cache.access(step)
        cache.access(0)  # 0 becomes MRU
        result = cache.access(2 * step)
        assert result.miss
        assert result.evicted_line == step // 4

    def test_cold_misses_counted(self):
        cache = two_way()
        cache.access(0)
        cache.access(4)
        assert cache.stats.cold_misses == 2

    def test_resident_lines(self):
        cache = two_way()
        cache.access(0)
        cache.access(64)
        assert cache.resident_lines() == {0, 16}

    def test_reset(self):
        cache = two_way()
        cache.access(0)
        cache.reset()
        assert cache.stats.accesses == 0
        assert cache.resident_lines() == frozenset()


class TestAgainstDirectMapped:
    def test_one_way_matches_direct_mapped(self):
        """Associativity 1 must behave exactly like DirectMappedCache."""
        geometry = CacheGeometry(256, 4)
        one_way = SetAssociativeCache(CacheGeometry(256, 4, associativity=1))
        direct = DirectMappedCache(geometry)
        addrs = [0, 4, 256, 0, 260, 4, 512, 0, 256] * 10
        trace = Trace(addrs, [0] * len(addrs))
        a = one_way.simulate(trace)
        b = direct.simulate(trace)
        assert a.misses == b.misses
        assert a.hits == b.hits

    def test_two_way_never_worse_on_thrashing_pair(self):
        geometry = CacheGeometry(128, 4)
        addrs = [0, 128] * 20
        trace = Trace(addrs, [0] * len(addrs))
        direct = DirectMappedCache(geometry).simulate(trace)
        assoc = two_way(size=128).simulate(trace)
        assert assoc.misses < direct.misses
        assert assoc.misses == 2  # two cold misses only


class TestPolicies:
    def _thrash3(self, policy):
        # Three lines rotating through a 2-way set.
        geometry = CacheGeometry(8, 4, associativity=2)  # a single set
        cache = SetAssociativeCache(geometry, policy=policy)
        addrs = [0, 4, 8] * 10
        trace = Trace(addrs, [0] * len(addrs))
        return cache.simulate(trace)

    def test_lru_on_cyclic_pattern_all_miss(self):
        # The classic LRU pathology: cyclic over capacity+1 lines.
        assert self._thrash3("lru").misses == 30

    def test_fifo_on_cyclic_pattern_all_miss(self):
        assert self._thrash3("fifo").misses == 30

    def test_random_beats_lru_on_cyclic_pattern(self):
        assert self._thrash3("random").misses < 30

    def test_random_is_deterministic_given_seed(self):
        geometry = CacheGeometry(8, 4, associativity=2)
        addrs = [0, 4, 8, 12] * 25
        trace = Trace(addrs, [0] * len(addrs))
        a = SetAssociativeCache(geometry, policy="random", seed=1).simulate(trace)
        b = SetAssociativeCache(geometry, policy="random", seed=1).simulate(trace)
        assert a.misses == b.misses


class TestFullyAssociative:
    def test_single_set(self):
        cache = FullyAssociativeCache(64, 4)
        assert cache.geometry.num_sets == 1
        assert cache.geometry.associativity == 16

    def test_lru_behaviour(self):
        cache = FullyAssociativeCache(8, 4)  # 2 lines
        cache.access(0)
        cache.access(100)
        cache.access(0)
        cache.access(200)  # evicts 100 (LRU)
        assert cache.access(0).hit
        assert cache.access(100).miss

    def test_stats_consistent(self):
        cache = FullyAssociativeCache(16, 4)
        trace = Trace(list(range(0, 400, 4)), [0] * 100)
        stats = cache.simulate(trace)
        stats.check()
        assert stats.misses == 100  # pure streaming never hits
