"""Tests for the single-pass stack simulators."""

import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.geometry import CacheGeometry
from repro.caches.set_associative import FullyAssociativeCache, SetAssociativeCache
from repro.caches.stack_sim import (
    direct_mapped_miss_counts_by_size,
    lru_miss_counts,
    set_lru_miss_counts,
)
from repro.trace.trace import Trace


def itrace(addrs):
    return Trace(addrs, [0] * len(addrs))


def random_trace(seed, n=300, slots=64):
    rng = random.Random(seed)
    return itrace([rng.randrange(slots) * 4 for _ in range(n)])


class TestFullyAssociative:
    def test_matches_event_simulation(self):
        trace = random_trace(1)
        counts = lru_miss_counts(trace, [2, 4, 8, 16])
        for capacity, misses in counts.items():
            cache = FullyAssociativeCache(capacity * 4, 4)
            assert cache.simulate(trace).misses == misses, capacity

    def test_monotone_in_capacity(self):
        trace = random_trace(2)
        counts = lru_miss_counts(trace, [1, 2, 4, 8, 16, 32])
        values = [counts[c] for c in sorted(counts)]
        assert values == sorted(values, reverse=True)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            lru_miss_counts(itrace([0]), [0])

    def test_empty_trace(self):
        assert lru_miss_counts(Trace.empty(), [4]) == {4: 0}


class TestSetAssociative:
    @pytest.mark.parametrize("num_sets", [1, 4, 16])
    def test_matches_event_simulation(self, num_sets):
        trace = random_trace(3)
        max_ways = 4
        counts = set_lru_miss_counts(trace, num_sets, max_ways)
        for ways in range(1, max_ways + 1):
            geometry = CacheGeometry(num_sets * ways * 4, 4, associativity=ways)
            simulated = SetAssociativeCache(geometry).simulate(trace).misses
            assert counts[ways] == simulated, ways

    def test_one_way_matches_direct_mapped(self):
        trace = random_trace(4)
        counts = set_lru_miss_counts(trace, 16, 1)
        direct = DirectMappedCache(CacheGeometry(64, 4)).simulate(trace)
        assert counts[1] == direct.misses

    def test_monotone_in_ways(self):
        trace = random_trace(5)
        counts = set_lru_miss_counts(trace, 8, 6)
        values = [counts[w] for w in sorted(counts)]
        assert values == sorted(values, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            set_lru_miss_counts(itrace([0]), 3, 2)
        with pytest.raises(ValueError):
            set_lru_miss_counts(itrace([0]), 4, 0)
        with pytest.raises(ValueError):
            set_lru_miss_counts(itrace([0]), 4, 2, line_size=3)


class TestDirectMappedMultiSize:
    def test_matches_event_simulation(self):
        trace = random_trace(6)
        sizes = [16, 64, 256]
        counts = direct_mapped_miss_counts_by_size(trace, sizes)
        for size in sizes:
            simulated = DirectMappedCache(CacheGeometry(size, 4)).simulate(trace)
            assert counts[size] == simulated.misses, size

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            direct_mapped_miss_counts_by_size(itrace([0]), [48])


addresses = st.lists(
    st.integers(min_value=0, max_value=63).map(lambda s: s * 4),
    min_size=1,
    max_size=150,
)


@given(addrs=addresses)
@settings(max_examples=40, deadline=None)
def test_stack_property_holds(addrs):
    """Fully-associative miss counts decrease with capacity, and the
    largest capacity's misses equal the number of distinct lines when
    capacity covers the footprint."""
    trace = itrace(addrs)
    counts = lru_miss_counts(trace, [1, 2, 4, 64])
    assert counts[1] >= counts[2] >= counts[4] >= counts[64]
    assert counts[64] == trace.line_footprint(4)


@given(addrs=addresses)
@settings(max_examples=40, deadline=None)
def test_set_assoc_oracle_agreement(addrs):
    """The stack simulator and the event simulator must agree exactly
    for every associativity — two independent LRU implementations."""
    trace = itrace(addrs)
    counts = set_lru_miss_counts(trace, 4, 3)
    for ways in [1, 2, 3]:
        geometry = CacheGeometry(4 * ways * 4, 4, associativity=ways)
        assert counts[ways] == SetAssociativeCache(geometry).simulate(trace).misses
