"""Tests for the Belady-with-bypass optimal caches."""

import numpy as np
import pytest

from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.geometry import CacheGeometry
from repro.caches.optimal import (
    NEVER,
    OptimalCache,
    OptimalDirectMappedCache,
    OptimalLastLineCache,
    next_use_array,
    next_use_times,
)
from repro.trace.trace import Trace


def itrace(addrs):
    return Trace(addrs, [0] * len(addrs))


class TestNextUseTimes:
    def test_no_repeats(self):
        assert next_use_times([1, 2, 3]) == [NEVER, NEVER, NEVER]

    def test_simple_repeat(self):
        assert next_use_times([7, 8, 7]) == [2, NEVER, NEVER]

    def test_chained_repeats(self):
        assert next_use_times([5, 5, 5]) == [1, 2, NEVER]

    def test_empty(self):
        assert next_use_times([]) == []


class TestNextUseArray:
    def test_matches_reference_scan(self):
        rng = np.random.default_rng(0)
        for size in (1, 2, 7, 100, 1000):
            lines = rng.integers(0, 20, size=size, dtype=np.int64)
            expected = next_use_times(lines.tolist())
            assert next_use_array(lines).tolist() == expected

    def test_empty(self):
        result = next_use_array(np.array([], dtype=np.int64))
        assert result.tolist() == []
        assert result.dtype == np.int64

    def test_all_distinct_is_never(self):
        assert next_use_array(np.array([3, 1, 2])).tolist() == [NEVER] * 3

    def test_never_fits_in_int64(self):
        # NEVER is sys.maxsize == int64 max; the array must hold it
        # without overflow so kernel comparisons stay exact.
        result = next_use_array(np.array([5], dtype=np.int64))
        assert int(result[0]) == NEVER


class TestOptimalDirectMapped:
    def test_requires_direct_mapped(self):
        with pytest.raises(ValueError):
            OptimalDirectMappedCache(CacheGeometry(64, 4, associativity=2))

    def test_keeps_sooner_used_line(self):
        # a b a: keeping a (bypassing b) is optimal.
        geometry = CacheGeometry(64, 4)
        stats = OptimalDirectMappedCache(geometry).simulate(itrace([0, 64, 0]))
        assert stats.misses == 2
        assert stats.bypasses == 1
        assert stats.hits == 1

    def test_thrashing_pair_halved(self):
        geometry = CacheGeometry(64, 4)
        trace = itrace([0, 64] * 10)
        stats = OptimalDirectMappedCache(geometry).simulate(trace)
        assert stats.misses == 11  # a_m b_m (a_h b_m)^9

    def test_never_worse_than_direct_mapped(self):
        geometry = CacheGeometry(64, 4)
        import random
        rng = random.Random(0)
        addrs = [rng.randrange(64) * 4 for _ in range(500)]
        trace = itrace(addrs)
        optimal = OptimalDirectMappedCache(geometry).simulate(trace)
        direct = DirectMappedCache(geometry).simulate(trace)
        assert optimal.misses <= direct.misses

    def test_stats_consistent(self):
        geometry = CacheGeometry(64, 4)
        stats = OptimalDirectMappedCache(geometry).simulate(itrace([0, 64, 0, 128, 64]))
        stats.check()

    def test_tie_prefers_resident(self):
        # Both lines never used again: keep the resident (no eviction).
        geometry = CacheGeometry(64, 4)
        stats = OptimalDirectMappedCache(geometry).simulate(itrace([0, 64]))
        assert stats.bypasses == 1
        assert stats.evictions == 0


class TestOptimalAssociative:
    def test_belady_classic(self):
        # 2-way single set, pattern where LRU fails but OPT keeps the
        # right pair: 0 4 8 0 4 8 ...
        geometry = CacheGeometry(8, 4, associativity=2)
        trace = itrace([0, 4, 8] * 10)
        optimal = OptimalCache(geometry).simulate(trace)
        # OPT keeps two of the three and bypasses the third:
        # misses = 3 cold + 9 repeats of the sacrificed line ... actually
        # OPT achieves one miss per trip after warmup.
        assert optimal.misses <= 12
        from repro.caches.set_associative import SetAssociativeCache
        lru = SetAssociativeCache(geometry).simulate(trace)
        assert optimal.misses < lru.misses

    def test_hits_update_next_use(self):
        geometry = CacheGeometry(8, 4, associativity=2)
        trace = itrace([0, 4, 0, 4, 8, 0, 4])
        stats = OptimalCache(geometry).simulate(trace)
        stats.check()
        assert stats.misses <= 3 + 1

    def test_cold_fill_uses_empty_ways(self):
        geometry = CacheGeometry(8, 4, associativity=2)
        stats = OptimalCache(geometry).simulate(itrace([0, 4]))
        assert stats.cold_misses == 2
        assert stats.evictions == 0


class TestOptimalLastLine:
    def test_sequential_run_costs_one_miss(self):
        geometry = CacheGeometry(64, 16)
        stats = OptimalLastLineCache(geometry).simulate(itrace([0, 4, 8, 12]))
        assert stats.misses == 1
        assert stats.buffer_hits == 3

    def test_bypass_possible_with_long_lines(self):
        # Lines of 8B; conflict pair with sequential words inside.
        geometry = CacheGeometry(64, 8)
        # a-line words (0,4), b-line words (64,68), alternating runs.
        addrs = []
        for _ in range(10):
            addrs.extend([0, 4, 64, 68])
        stats = OptimalLastLineCache(geometry).simulate(itrace(addrs))
        # Collapsed events: (A B)^10 -> optimal keeps one: 11 misses.
        assert stats.misses == 11

    def test_naive_optimal_cannot_bypass_here(self):
        geometry = CacheGeometry(64, 8)
        addrs = []
        for _ in range(10):
            addrs.extend([0, 4, 64, 68])
        naive = OptimalCache(geometry).simulate(itrace(addrs))
        collapsed = OptimalLastLineCache(geometry).simulate(itrace(addrs))
        # The immediate sequential next-use forces the naive model to
        # always replace, so the collapsed model strictly wins.
        assert collapsed.misses < naive.misses

    def test_stats_consistent(self):
        geometry = CacheGeometry(64, 16)
        stats = OptimalLastLineCache(geometry).simulate(itrace([0, 4, 64, 0, 4]))
        stats.check()
