"""Tests for the Cache / OfflineCache interface layer."""

import pytest

from repro.caches.base import AccessResult, Cache, OfflineCache
from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.geometry import CacheGeometry
from repro.trace.reference import RefKind
from repro.trace.trace import Trace


class _MinimalCache(Cache):
    """Smallest possible Cache subclass: a single-entry cache that uses
    only the base-class helpers (default contains())."""

    def __init__(self):
        super().__init__(CacheGeometry(4, 4), name="minimal")
        self._line = None

    def access(self, addr, kind=RefKind.IFETCH):
        self.stats.accesses += 1
        line = self.geometry.line_address(addr)
        if self._line == line:
            self.stats.hits += 1
            return AccessResult(hit=True)
        self.stats.misses += 1
        evicted = self._line
        self._line = line
        return AccessResult(hit=False, evicted_line=evicted)

    def resident_lines(self):
        return frozenset() if self._line is None else frozenset([self._line])

    def _reset_state(self):
        self._line = None


class TestAccessResult:
    def test_miss_is_not_hit(self):
        assert AccessResult(hit=False).miss
        assert not AccessResult(hit=True).miss

    def test_defaults(self):
        result = AccessResult(hit=False)
        assert result.bypassed is False
        assert result.evicted_line is None

    def test_frozen(self):
        with pytest.raises(Exception):
            AccessResult(hit=True).hit = False


class TestCacheBase:
    def test_default_contains_uses_resident_lines(self):
        cache = _MinimalCache()
        cache.access(16)
        assert cache.contains(16)
        assert not cache.contains(32)

    def test_simulate_drives_access(self):
        cache = _MinimalCache()
        stats = cache.simulate(Trace([0, 0, 4], [0, 0, 0]))
        assert stats.accesses == 3
        assert stats.hits == 1

    def test_reset_calls_subclass_hook(self):
        cache = _MinimalCache()
        cache.access(0)
        cache.reset()
        assert cache.resident_lines() == frozenset()
        assert cache.stats.accesses == 0

    def test_name_defaults_to_class_name(self):
        cache = DirectMappedCache(CacheGeometry(64, 4), name="")
        assert cache.name  # never empty

    def test_cannot_instantiate_abstract(self):
        with pytest.raises(TypeError):
            Cache(CacheGeometry(64, 4))  # type: ignore[abstract]
        with pytest.raises(TypeError):
            OfflineCache(CacheGeometry(64, 4))  # type: ignore[abstract]
