"""Tests for the stream-buffer prefetcher."""

import pytest

from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.geometry import CacheGeometry
from repro.caches.stream_buffer import StreamBufferCache
from repro.trace.trace import Trace


def itrace(addrs):
    return Trace(addrs, [0] * len(addrs))


class TestBasics:
    def test_requires_direct_mapped(self):
        with pytest.raises(ValueError):
            StreamBufferCache(CacheGeometry(64, 4, associativity=2))

    def test_requires_positive_depth(self):
        with pytest.raises(ValueError):
            StreamBufferCache(CacheGeometry(64, 4), depth=0)

    def test_sequential_stream_costs_one_memory_miss(self):
        cache = StreamBufferCache(CacheGeometry(64, 4), depth=4)
        stats = cache.simulate(itrace([0, 4, 8, 12, 16]))
        assert stats.misses == 1
        assert stats.buffer_hits == 4

    def test_prefetch_hit_promotes_into_cache(self):
        cache = StreamBufferCache(CacheGeometry(64, 4), depth=2)
        cache.access(0)
        cache.access(4)  # buffer hit, promoted
        assert cache.contains(4)

    def test_non_sequential_restart(self):
        cache = StreamBufferCache(CacheGeometry(64, 4), depth=2)
        cache.access(0)
        result = cache.access(100)  # not head of stream
        assert result.miss
        assert cache.stats.misses == 2

    def test_does_not_reduce_conflict_misses(self):
        """The paper's point: stream buffers fix miss penalty, not
        conflicts — the alternating pair still misses every time."""
        geometry = CacheGeometry(64, 4)
        trace = itrace([0, 64] * 10)
        stream = StreamBufferCache(geometry, depth=4).simulate(trace)
        direct = DirectMappedCache(geometry).simulate(trace)
        assert stream.misses == direct.misses

    def test_stream_continues_extending(self):
        cache = StreamBufferCache(CacheGeometry(256, 4), depth=1)
        stats = cache.simulate(itrace([0, 4, 8, 12]))
        # depth 1: each buffer hit re-extends by one line.
        assert stats.misses == 1

    def test_stats_consistent(self):
        cache = StreamBufferCache(CacheGeometry(64, 4), depth=3)
        stats = cache.simulate(itrace([0, 4, 100, 104, 0, 64]))
        stats.check()

    def test_reset(self):
        cache = StreamBufferCache(CacheGeometry(64, 4))
        cache.access(0)
        cache.reset()
        assert cache.stats.accesses == 0
        assert cache.resident_lines() == frozenset()
