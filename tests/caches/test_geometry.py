"""Tests for CacheGeometry address arithmetic."""

import pytest

from repro.caches.geometry import CacheGeometry


class TestValidation:
    def test_size_must_be_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            CacheGeometry(3000, 4)

    def test_line_size_must_be_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            CacheGeometry(1024, 12)

    def test_line_cannot_exceed_size(self):
        with pytest.raises(ValueError, match="exceed"):
            CacheGeometry(16, 32)

    def test_associativity_must_be_positive(self):
        with pytest.raises(ValueError):
            CacheGeometry(1024, 16, associativity=0)

    def test_ways_must_divide_lines(self):
        with pytest.raises(ValueError):
            CacheGeometry(1024, 16, associativity=3)

    def test_line_equal_to_size_is_allowed(self):
        geometry = CacheGeometry(64, 64)
        assert geometry.num_lines == 1

    def test_odd_associativity_is_legal(self):
        # 12KB 3-way: 3072 lines, 1024 sets — real hardware exists.
        geometry = CacheGeometry(12 * 1024, 4, associativity=3)
        assert geometry.num_sets == 1024

    def test_set_count_must_be_power_of_two(self):
        with pytest.raises(ValueError, match="number of sets"):
            CacheGeometry(12 * 1024, 4, associativity=2)

    def test_size_must_be_line_multiple(self):
        with pytest.raises(ValueError, match="multiple"):
            CacheGeometry(100, 8)


class TestDerived:
    def test_num_lines(self):
        assert CacheGeometry(32 * 1024, 16).num_lines == 2048

    def test_num_sets_direct_mapped(self):
        assert CacheGeometry(32 * 1024, 16).num_sets == 2048

    def test_num_sets_two_way(self):
        assert CacheGeometry(32 * 1024, 16, associativity=2).num_sets == 1024

    def test_offset_bits(self):
        assert CacheGeometry(1024, 16).offset_bits == 4

    def test_index_bits(self):
        assert CacheGeometry(1024, 16).index_bits == 6

    def test_fully_associative_constructor(self):
        geometry = CacheGeometry.fully_associative(1024, 16)
        assert geometry.num_sets == 1
        assert geometry.associativity == 64

    def test_scaled(self):
        doubled = CacheGeometry(1024, 16).scaled(2)
        assert doubled.size == 2048
        assert doubled.line_size == 16


class TestAddressDecomposition:
    def test_line_address(self):
        assert CacheGeometry(1024, 16).line_address(0x35) == 3

    def test_set_index_wraps(self):
        geometry = CacheGeometry(1024, 16)  # 64 sets
        assert geometry.set_index(0x0) == 0
        assert geometry.set_index(1024) == 0
        assert geometry.set_index(16) == 1

    def test_set_index_of_line(self):
        geometry = CacheGeometry(1024, 16)
        line = geometry.line_address(1024 + 32)
        assert geometry.set_index_of_line(line) == 2

    def test_tag(self):
        geometry = CacheGeometry(1024, 16)
        assert geometry.tag(0) == 0
        assert geometry.tag(1024) == 1
        assert geometry.tag(2048 + 16) == 2

    def test_line_base(self):
        assert CacheGeometry(1024, 16).line_base(0x37) == 0x30

    def test_conflicting_addresses_share_set(self):
        geometry = CacheGeometry(32 * 1024, 4)
        assert geometry.set_index(0x100) == geometry.set_index(0x100 + 32 * 1024)

    def test_str_mentions_organization(self):
        assert "direct-mapped" in str(CacheGeometry(1024, 16))
        assert "2-way" in str(CacheGeometry(1024, 16, associativity=2))
        assert "fully-associative" in str(CacheGeometry.fully_associative(1024, 16))
