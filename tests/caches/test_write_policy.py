"""Tests for write policies and traffic accounting."""

import pytest

from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.geometry import CacheGeometry
from repro.caches.write_policy import TrafficStats, WritePolicy, WritePolicyCache
from repro.core.exclusion_cache import DynamicExclusionCache
from repro.core.hitlast import IdealHitLastStore
from repro.trace.reference import RefKind
from repro.trace.trace import Trace

GEOMETRY = CacheGeometry(64, 16)


def wb_cache(inner=None):
    inner = inner or DirectMappedCache(GEOMETRY)
    return WritePolicyCache(inner, WritePolicy.WRITE_BACK)


def wt_cache(inner=None):
    inner = inner or DirectMappedCache(GEOMETRY)
    return WritePolicyCache(inner, WritePolicy.WRITE_THROUGH)


class TestWriteBack:
    def test_load_miss_fetches_line(self):
        cache = wb_cache()
        cache.access(0, RefKind.LOAD)
        assert cache.traffic.lines_fetched == 1
        assert cache.traffic.lines_written_back == 0

    def test_store_dirties_line(self):
        cache = wb_cache()
        cache.access(0, RefKind.STORE)
        assert cache.dirty_lines() == {0}

    def test_clean_eviction_costs_nothing(self):
        cache = wb_cache()
        cache.access(0, RefKind.LOAD)
        cache.access(64, RefKind.LOAD)  # evicts clean line 0
        assert cache.traffic.lines_written_back == 0

    def test_dirty_eviction_writes_back(self):
        cache = wb_cache()
        cache.access(0, RefKind.STORE)
        cache.access(64, RefKind.LOAD)  # evicts dirty line 0
        assert cache.traffic.lines_written_back == 1
        assert cache.dirty_lines() == frozenset()

    def test_repeated_stores_one_writeback(self):
        cache = wb_cache()
        for _ in range(5):
            cache.access(0, RefKind.STORE)
        cache.access(64, RefKind.LOAD)
        assert cache.traffic.lines_written_back == 1

    def test_flush_writes_all_dirty_lines(self):
        cache = wb_cache()
        cache.access(0, RefKind.STORE)
        cache.access(16, RefKind.STORE)
        assert cache.flush() == 2
        assert cache.traffic.lines_written_back == 2
        assert cache.dirty_lines() == frozenset()

    def test_ifetch_never_dirties(self):
        cache = wb_cache()
        cache.access(0, RefKind.IFETCH)
        assert cache.dirty_lines() == frozenset()

    def test_wrapper_stats_mirror_inner(self):
        cache = wb_cache()
        trace = Trace([0, 64, 0, 64], [2, 1, 2, 1])
        stats = cache.simulate(trace)
        stats.check()
        assert stats.misses == cache.inner.stats.misses


class TestWriteThrough:
    def test_every_store_writes_memory(self):
        cache = wt_cache()
        cache.access(0, RefKind.STORE)
        cache.access(0, RefKind.STORE)
        assert cache.traffic.words_written_through == 2

    def test_store_miss_does_not_allocate(self):
        cache = wt_cache()
        cache.access(0, RefKind.STORE)
        assert not cache.inner.contains(0)
        assert cache.stats.bypasses == 1

    def test_store_hit_touches_inner(self):
        cache = wt_cache()
        cache.access(0, RefKind.LOAD)  # allocate
        result = cache.access(0, RefKind.STORE)
        assert result.hit
        assert cache.traffic.words_written_through == 1

    def test_no_dirty_lines_ever(self):
        cache = wt_cache()
        cache.access(0, RefKind.LOAD)
        cache.access(0, RefKind.STORE)
        assert cache.dirty_lines() == frozenset()
        assert cache.flush() == 0

    def test_loads_fetch_normally(self):
        cache = wt_cache()
        cache.access(0, RefKind.LOAD)
        assert cache.traffic.lines_fetched == 1


class TestWithExclusion:
    def test_bypassed_store_goes_to_memory(self):
        inner = DynamicExclusionCache(
            CacheGeometry(64, 4), store=IdealHitLastStore(default=False)
        )
        cache = WritePolicyCache(inner, WritePolicy.WRITE_BACK)
        cache.access(0, RefKind.STORE)    # allocated, dirty
        cache.access(64, RefKind.STORE)   # bypassed by the FSM
        assert cache.traffic.words_written_through == 1
        assert cache.dirty_lines() == {0}

    def test_bypassed_load_still_fetches(self):
        """Exclusion avoids storing, not fetching: the bypassed word is
        forwarded to the CPU, so the transfer happens regardless."""
        inner = DynamicExclusionCache(
            CacheGeometry(64, 4), store=IdealHitLastStore(default=False)
        )
        cache = WritePolicyCache(inner, WritePolicy.WRITE_BACK)
        cache.access(0, RefKind.LOAD)
        fetched = cache.traffic.lines_fetched
        cache.access(64, RefKind.LOAD)  # bypassed but still transferred
        assert cache.traffic.lines_fetched == fetched + 1


class TestTrafficStats:
    def test_byte_accounting(self):
        traffic = TrafficStats(lines_fetched=3, lines_written_back=2,
                               words_written_through=5)
        assert traffic.bytes_fetched(16) == 48
        assert traffic.bytes_written(16) == 32 + 20
        assert traffic.total_bytes(16) == 100

    def test_reset(self):
        cache = wb_cache()
        cache.access(0, RefKind.STORE)
        cache.reset()
        assert cache.traffic == TrafficStats()
        assert cache.stats.accesses == 0


class TestTrafficComparison:
    def test_write_back_beats_write_through_on_hot_stores(self):
        """Repeated stores to one line: write-back coalesces them."""
        trace = Trace([0] * 50, [int(RefKind.STORE)] * 50)
        wb = wb_cache()
        wb.simulate(trace)
        wb.flush()
        wt = wt_cache()
        wt.simulate(trace)
        assert wb.traffic.total_bytes(16) < wt.traffic.total_bytes(16)
