"""Tests for CacheStats and helpers."""

import pytest

from repro.caches.stats import CacheStats, SimulationResult, percent_reduction


class TestCacheStats:
    def test_miss_rate(self):
        stats = CacheStats(accesses=10, hits=7, misses=3)
        assert stats.miss_rate == pytest.approx(0.3)

    def test_hit_rate(self):
        stats = CacheStats(accesses=10, hits=7, misses=3)
        assert stats.hit_rate == pytest.approx(0.7)

    def test_rates_of_empty_stats(self):
        stats = CacheStats()
        assert stats.miss_rate == 0.0
        assert stats.hit_rate == 0.0

    def test_merge_sums_fields(self):
        a = CacheStats(accesses=5, hits=3, misses=2, bypasses=1, evictions=1)
        b = CacheStats(accesses=5, hits=4, misses=1, cold_misses=1)
        merged = a.merge(b)
        assert merged.accesses == 10
        assert merged.hits == 7
        assert merged.misses == 3
        assert merged.bypasses == 1
        assert merged.cold_misses == 1

    def test_check_passes_for_consistent_stats(self):
        CacheStats(accesses=4, hits=2, misses=2, bypasses=1).check()

    def test_check_rejects_unbalanced_counts(self):
        with pytest.raises(AssertionError, match="accesses"):
            CacheStats(accesses=5, hits=2, misses=2).check()

    def test_check_rejects_excess_bypasses(self):
        with pytest.raises(AssertionError, match="bypasses"):
            CacheStats(accesses=2, hits=1, misses=1, bypasses=2).check()

    def test_check_rejects_excess_buffer_hits(self):
        with pytest.raises(AssertionError, match="buffer"):
            CacheStats(accesses=2, hits=1, misses=1, buffer_hits=2).check()

    def test_check_rejects_excess_cold_misses(self):
        with pytest.raises(AssertionError, match="cold"):
            CacheStats(accesses=2, hits=1, misses=1, cold_misses=2).check()


class TestSimulationResult:
    def test_miss_rate_delegates(self):
        result = SimulationResult("x", CacheStats(accesses=4, hits=3, misses=1))
        assert result.miss_rate == pytest.approx(0.25)


class TestPercentReduction:
    def test_basic(self):
        assert percent_reduction(0.10, 0.05) == pytest.approx(50.0)

    def test_no_change(self):
        assert percent_reduction(0.10, 0.10) == 0.0

    def test_worse_is_negative(self):
        assert percent_reduction(0.10, 0.12) == pytest.approx(-20.0)

    def test_zero_baseline_zero_improved_is_no_change(self):
        assert percent_reduction(0.0, 0.0) == 0.0

    def test_zero_baseline_with_regression_raises(self):
        # A regression from a perfect baseline must not masquerade as
        # "no change".
        with pytest.raises(ValueError, match="undefined"):
            percent_reduction(0.0, 0.1)
