"""Tests for the victim cache (Jouppi)."""

import pytest

from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.geometry import CacheGeometry
from repro.caches.victim import VictimCache
from repro.trace.trace import Trace


def itrace(addrs):
    return Trace(addrs, [0] * len(addrs))


class TestBasics:
    def test_requires_direct_mapped(self):
        with pytest.raises(ValueError):
            VictimCache(CacheGeometry(64, 4, associativity=2))

    def test_requires_positive_entries(self):
        with pytest.raises(ValueError):
            VictimCache(CacheGeometry(64, 4), entries=0)

    def test_evicted_line_lands_in_buffer(self):
        cache = VictimCache(CacheGeometry(64, 4), entries=2)
        cache.access(0)
        cache.access(64)  # evicts line 0 into the buffer
        assert 0 in cache.resident_lines()

    def test_buffer_hit_swaps(self):
        cache = VictimCache(CacheGeometry(64, 4), entries=2)
        cache.access(0)
        cache.access(64)
        result = cache.access(0)  # hit in victim buffer
        assert result.hit
        assert cache.stats.buffer_hits == 1
        # After the swap, 64's line is in the buffer.
        assert cache.access(64).hit

    def test_thrashing_pair_fixed(self):
        """The pathological DM pattern costs only the two cold misses."""
        cache = VictimCache(CacheGeometry(64, 4), entries=1)
        stats = cache.simulate(itrace([0, 64] * 20))
        assert stats.misses == 2
        assert stats.buffer_hits == 38

    def test_buffer_capacity_limits_benefit(self):
        # Three conflicting lines rotating through a 1-entry buffer miss.
        cache = VictimCache(CacheGeometry(64, 4), entries=1)
        stats = cache.simulate(itrace([0, 64, 128] * 10))
        assert stats.misses == 30

    def test_larger_buffer_catches_rotation(self):
        cache = VictimCache(CacheGeometry(64, 4), entries=2)
        stats = cache.simulate(itrace([0, 64, 128] * 10))
        assert stats.misses == 3  # cold only

    def test_never_worse_than_direct_mapped(self):
        import random
        rng = random.Random(2)
        addrs = [rng.randrange(128) * 4 for _ in range(1000)]
        geometry = CacheGeometry(128, 4)
        victim = VictimCache(geometry, entries=4).simulate(itrace(addrs))
        direct = DirectMappedCache(geometry).simulate(itrace(addrs))
        assert victim.misses <= direct.misses

    def test_stats_consistent(self):
        cache = VictimCache(CacheGeometry(64, 4), entries=2)
        stats = cache.simulate(itrace([0, 64, 0, 128, 64, 0]))
        stats.check()

    def test_reset(self):
        cache = VictimCache(CacheGeometry(64, 4))
        cache.access(0)
        cache.access(64)
        cache.reset()
        assert cache.resident_lines() == frozenset()
        assert cache.stats.accesses == 0
