"""Property-based tests (hypothesis) on the cache substrate."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.geometry import CacheGeometry
from repro.caches.optimal import OptimalCache, OptimalDirectMappedCache
from repro.caches.set_associative import FullyAssociativeCache, SetAssociativeCache
from repro.caches.victim import VictimCache
from repro.trace.stats import lru_miss_rate_from_distances
from repro.trace.trace import Trace

#: Word-aligned addresses in a small space so conflicts are common.
addresses = st.lists(
    st.integers(min_value=0, max_value=255).map(lambda slot: slot * 4),
    min_size=1,
    max_size=200,
)

geometries = st.sampled_from(
    [
        CacheGeometry(64, 4),
        CacheGeometry(128, 4),
        CacheGeometry(64, 16),
        CacheGeometry(256, 8),
    ]
)


def itrace(addrs):
    return Trace(addrs, [0] * len(addrs))


@given(addrs=addresses, geometry=geometries)
@settings(max_examples=60, deadline=None)
def test_direct_mapped_stats_consistent(addrs, geometry):
    stats = DirectMappedCache(geometry).simulate(itrace(addrs))
    stats.check()
    assert stats.accesses == len(addrs)


@given(addrs=addresses, geometry=geometries)
@settings(max_examples=60, deadline=None)
def test_direct_mapped_contents_are_last_line_per_set(addrs, geometry):
    """The resident line of each set is always the most recent line
    mapped to it — the defining property of always-allocate DM."""
    cache = DirectMappedCache(geometry)
    last_per_set = {}
    for addr in addrs:
        cache.access(addr)
        line = geometry.line_address(addr)
        last_per_set[geometry.set_index_of_line(line)] = line
    assert cache.resident_lines() == frozenset(last_per_set.values())


@given(addrs=addresses, geometry=geometries)
@settings(max_examples=60, deadline=None)
def test_optimal_never_worse_than_direct_mapped(addrs, geometry):
    trace = itrace(addrs)
    optimal = OptimalDirectMappedCache(geometry).simulate(trace)
    direct = DirectMappedCache(geometry).simulate(trace)
    assert optimal.misses <= direct.misses


@given(addrs=addresses, geometry=geometries)
@settings(max_examples=60, deadline=None)
def test_victim_cache_never_worse_than_direct_mapped(addrs, geometry):
    trace = itrace(addrs)
    victim = VictimCache(geometry, entries=4).simulate(trace)
    direct = DirectMappedCache(geometry).simulate(trace)
    assert victim.misses <= direct.misses


@given(addrs=addresses)
@settings(max_examples=60, deadline=None)
def test_lru_inclusion_property(addrs):
    """A bigger fully-associative LRU cache never misses more."""
    trace = itrace(addrs)
    small = FullyAssociativeCache(64, 4).simulate(trace)
    large = FullyAssociativeCache(128, 4).simulate(trace)
    assert large.misses <= small.misses


@given(addrs=addresses)
@settings(max_examples=40, deadline=None)
def test_lru_matches_reuse_distance_analysis(addrs):
    """Fully-associative LRU simulation equals the stack-distance
    computation — two independent implementations of the same model."""
    trace = itrace(addrs)
    capacity_lines = 8
    simulated = FullyAssociativeCache(capacity_lines * 4, 4).simulate(trace)
    analytic = lru_miss_rate_from_distances(trace, capacity_lines, line_size=4)
    assert simulated.miss_rate == analytic


@given(addrs=addresses)
@settings(max_examples=40, deadline=None)
def test_optimal_not_worse_than_lru_fully_associative(addrs):
    """Belady with bypass is optimal, so it cannot lose to LRU at equal
    geometry."""
    trace = itrace(addrs)
    geometry = CacheGeometry.fully_associative(64, 4)
    optimal = OptimalCache(geometry).simulate(trace)
    lru = SetAssociativeCache(geometry).simulate(trace)
    assert optimal.misses <= lru.misses


@given(addrs=addresses, geometry=geometries)
@settings(max_examples=60, deadline=None)
def test_hits_require_prior_access(addrs, geometry):
    """No cache may hit on a line never accessed before (no prefetch
    in the plain models)."""
    cache = DirectMappedCache(geometry)
    seen = set()
    for addr in addrs:
        line = geometry.line_address(addr)
        result = cache.access(addr)
        if result.hit:
            assert line in seen
        seen.add(line)


@given(
    slot=st.integers(min_value=0, max_value=10_000),
    geometry=geometries,
)
@settings(max_examples=100, deadline=None)
def test_geometry_decomposition_recomposes(slot, geometry):
    addr = slot * 4
    line = geometry.line_address(addr)
    recomposed = (
        (geometry.tag(addr) << geometry.index_bits) | geometry.set_index(addr)
    )
    assert recomposed == line
    assert geometry.line_base(addr) == line << geometry.offset_bits
