"""Cross-cutting composition tests: the wrappers must stack.

A credible cache library lets policies compose — write policies around
long-line exclusion around hierarchies.  These tests exercise the
combinations the individual module tests do not.
"""

import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.caches.geometry import CacheGeometry
from repro.caches.write_policy import WritePolicy, WritePolicyCache
from repro.core.exclusion_cache import DynamicExclusionCache
from repro.core.hitlast import IdealHitLastStore
from repro.core.long_lines import ExclusionStreamBufferCache, LastLineBufferCache
from repro.core.victim_exclusion import ExclusionVictimCache
from repro.trace.reference import RefKind
from repro.trace.trace import Trace

GEOMETRY = CacheGeometry(128, 16)


def mixed_trace(seed, n=400):
    rng = random.Random(seed)
    addrs = []
    kinds = []
    for _ in range(n):
        addrs.append(rng.randrange(128) * 4)
        kinds.append(rng.choice([0, 0, 0, 1, 2]))
    return Trace(addrs, kinds)


def de_inner(default=True):
    return DynamicExclusionCache(GEOMETRY, store=IdealHitLastStore(default=default))


class TestWritePolicyOverLongLines:
    def test_write_back_over_last_line_buffer(self):
        cache = WritePolicyCache(LastLineBufferCache(de_inner()))
        stats = cache.simulate(mixed_trace(1))
        stats.check()
        assert cache.traffic.lines_fetched > 0

    def test_write_through_over_last_line_buffer(self):
        cache = WritePolicyCache(
            LastLineBufferCache(de_inner()), WritePolicy.WRITE_THROUGH
        )
        trace = mixed_trace(2)
        stats = cache.simulate(trace)
        stats.check()
        stores = sum(1 for _, k in trace.pairs() if k == int(RefKind.STORE))
        assert cache.traffic.words_written_through == stores

    def test_write_back_over_stream_buffer(self):
        cache = WritePolicyCache(ExclusionStreamBufferCache(de_inner(), depth=2))
        stats = cache.simulate(mixed_trace(3))
        stats.check()

    def test_write_back_over_victim_hybrid(self):
        cache = WritePolicyCache(
            ExclusionVictimCache(CacheGeometry(128, 4), entries=2)
        )
        stats = cache.simulate(mixed_trace(4))
        stats.check()


class TestNamesCompose:
    def test_wrapper_names_are_descriptive(self):
        cache = WritePolicyCache(LastLineBufferCache(de_inner()))
        assert "write-back" in cache.name
        assert "last-line" in cache.name
        assert "dynamic-exclusion" in cache.name


class TestResetCascades:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: WritePolicyCache(LastLineBufferCache(de_inner())),
            lambda: WritePolicyCache(ExclusionStreamBufferCache(de_inner())),
            lambda: LastLineBufferCache(de_inner()),
        ],
    )
    def test_reset_clears_every_layer(self, factory):
        cache = factory()
        cache.simulate(mixed_trace(5, n=100))
        cache.reset()
        assert cache.stats.accesses == 0
        assert cache.resident_lines() == frozenset()
        # Re-simulating from reset must reproduce the fresh-run stats.
        first = factory().simulate(mixed_trace(6, n=100))
        again = cache.simulate(mixed_trace(6, n=100))
        assert first.misses == again.misses


addresses_and_kinds = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=127).map(lambda s: s * 4),
        st.sampled_from([0, 1, 2]),
    ),
    min_size=1,
    max_size=150,
)


@given(refs=addresses_and_kinds, policy=st.sampled_from(list(WritePolicy)))
@settings(max_examples=50, deadline=None)
def test_composed_stack_invariants(refs, policy):
    """Any reference mix through the full stack keeps stats consistent
    and traffic non-negative."""
    cache = WritePolicyCache(LastLineBufferCache(de_inner()), policy)
    trace = Trace([a for a, _ in refs], [k for _, k in refs])
    stats = cache.simulate(trace)
    stats.check()
    assert cache.traffic.lines_fetched >= 0
    assert cache.traffic.lines_written_back >= 0
    # Write-back can never write back more lines than it fetched.
    if policy is WritePolicy.WRITE_BACK:
        assert cache.traffic.lines_written_back <= cache.traffic.lines_fetched
