"""Property tests linking the long-line wrapper to the collapse
transform — two independent implementations of Section 6's semantics."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.geometry import CacheGeometry
from repro.core.exclusion_cache import DynamicExclusionCache
from repro.core.hitlast import IdealHitLastStore
from repro.core.long_lines import LastLineBufferCache
from repro.trace.trace import Trace
from repro.trace.transforms import collapse_sequential_lines

GEOMETRY = CacheGeometry(128, 16)

addresses = st.lists(
    st.integers(min_value=0, max_value=255).map(lambda slot: slot * 4),
    min_size=1,
    max_size=150,
)


def itrace(addrs):
    return Trace(addrs, [0] * len(addrs))


@given(addrs=addresses, default=st.booleans())
@settings(max_examples=60, deadline=None)
def test_wrapper_equals_de_on_collapsed_trace(addrs, default):
    """The last-line buffer wrapper must produce exactly the misses of a
    plain DE cache fed the collapsed line-event stream."""
    trace = itrace(addrs)
    wrapped = LastLineBufferCache(
        DynamicExclusionCache(GEOMETRY, store=IdealHitLastStore(default=default))
    ).simulate(trace)
    collapsed = collapse_sequential_lines(trace, GEOMETRY.line_size)
    plain = DynamicExclusionCache(
        GEOMETRY, store=IdealHitLastStore(default=default)
    ).simulate(collapsed)
    assert wrapped.misses == plain.misses
    assert wrapped.bypasses == plain.bypasses
    assert wrapped.buffer_hits == len(trace) - len(collapsed)


@given(addrs=addresses)
@settings(max_examples=60, deadline=None)
def test_wrapper_around_direct_mapped_changes_nothing(addrs):
    """A conventional DM cache hits sequential words anyway, so the
    buffer must not change its miss count."""
    trace = itrace(addrs)
    wrapped = LastLineBufferCache(DirectMappedCache(GEOMETRY)).simulate(trace)
    plain = DirectMappedCache(GEOMETRY).simulate(trace)
    assert wrapped.misses == plain.misses


@given(addrs=addresses, default=st.booleans())
@settings(max_examples=60, deadline=None)
def test_wrapper_stats_consistent(addrs, default):
    trace = itrace(addrs)
    cache = LastLineBufferCache(
        DynamicExclusionCache(GEOMETRY, store=IdealHitLastStore(default=default))
    )
    stats = cache.simulate(trace)
    stats.check()
    # The inner cache saw exactly the collapsed events.
    collapsed = collapse_sequential_lines(trace, GEOMETRY.line_size)
    assert cache.inner.stats.accesses == len(collapsed)
