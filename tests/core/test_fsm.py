"""Unit tests for the dynamic-exclusion FSM transition table."""

import pytest

from repro.core.fsm import Decision, DynamicExclusionFSM, LineState
from repro.core.hitlast import IdealHitLastStore


def make_fsm(default=True, sticky_levels=1):
    return DynamicExclusionFSM(IdealHitLastStore(default=default), sticky_levels)


class TestTransitions:
    def test_sticky_levels_must_be_positive(self):
        with pytest.raises(ValueError):
            make_fsm(sticky_levels=0)

    def test_hit_sets_sticky_and_hitlast(self):
        fsm = make_fsm()
        line = LineState(tag=1, sticky=0, hit_last=False)
        assert fsm.step(line, 1) is Decision.HIT
        assert line.sticky == 1
        assert line.hit_last

    def test_cold_line_loads(self):
        fsm = make_fsm()
        line = LineState()
        assert fsm.step(line, 5) is Decision.LOAD
        assert line.tag == 5
        assert line.sticky == 1
        assert line.hit_last

    def test_unsticky_resident_replaced(self):
        fsm = make_fsm(default=False)
        line = LineState(tag=1, sticky=0, hit_last=True)
        assert fsm.step(line, 2) is Decision.LOAD
        assert line.tag == 2
        # The paper's A,!s -> B,s transition sets the incoming hl bit.
        assert line.hit_last

    def test_unsticky_replacement_writes_back_old_bit(self):
        store = IdealHitLastStore(default=False)
        fsm = DynamicExclusionFSM(store)
        line = LineState(tag=1, sticky=0, hit_last=True)
        fsm.step(line, 2)
        assert store.lookup(1) is True

    def test_sticky_resident_with_hitlast_incoming_replaced(self):
        store = IdealHitLastStore(default=False)
        store.update(2, True)
        fsm = DynamicExclusionFSM(store)
        line = LineState(tag=1, sticky=1, hit_last=True)
        assert fsm.step(line, 2) is Decision.LOAD
        assert line.tag == 2
        # Fresh hl copy starts clear on the hit-last load path.
        assert not line.hit_last

    def test_sticky_resident_without_hitlast_incoming_bypassed(self):
        fsm = make_fsm(default=False)
        line = LineState(tag=1, sticky=1, hit_last=True)
        assert fsm.step(line, 2) is Decision.BYPASS
        assert line.tag == 1
        assert line.sticky == 0

    def test_bypass_then_second_conflict_replaces(self):
        fsm = make_fsm(default=False)
        line = LineState(tag=1, sticky=1, hit_last=True)
        fsm.step(line, 2)
        assert fsm.step(line, 2) is Decision.LOAD
        assert line.tag == 2

    def test_rereference_restores_sticky(self):
        fsm = make_fsm(default=False)
        line = LineState(tag=1, sticky=1, hit_last=True)
        fsm.step(line, 2)  # bypass, sticky drops to 0
        fsm.step(line, 1)  # hit restores stickiness
        assert line.sticky == 1
        assert fsm.step(line, 2) is Decision.BYPASS


class TestMultiSticky:
    def test_multiple_conflicts_needed_to_replace(self):
        fsm = make_fsm(default=False, sticky_levels=3)
        line = LineState(tag=1, sticky=3, hit_last=True)
        assert fsm.step(line, 2) is Decision.BYPASS
        assert fsm.step(line, 2) is Decision.BYPASS
        assert fsm.step(line, 2) is Decision.BYPASS
        assert fsm.step(line, 2) is Decision.LOAD

    def test_hit_resets_counter_to_max(self):
        fsm = make_fsm(default=False, sticky_levels=2)
        line = LineState(tag=1, sticky=2, hit_last=True)
        fsm.step(line, 2)
        fsm.step(line, 1)
        assert line.sticky == 2


class TestLineState:
    def test_copy_is_independent(self):
        line = LineState(tag=1, sticky=1, hit_last=True)
        clone = line.copy()
        clone.tag = 9
        assert line.tag == 1
