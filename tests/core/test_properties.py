"""Property-based tests on the dynamic-exclusion cache."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.geometry import CacheGeometry
from repro.caches.optimal import OptimalDirectMappedCache
from repro.core.exclusion_cache import DynamicExclusionCache
from repro.core.hitlast import HashedHitLastStore, IdealHitLastStore
from repro.trace.trace import Trace

addresses = st.lists(
    st.integers(min_value=0, max_value=127).map(lambda slot: slot * 4),
    min_size=1,
    max_size=200,
)

defaults = st.booleans()
sticky = st.integers(min_value=1, max_value=3)


def itrace(addrs):
    return Trace(addrs, [0] * len(addrs))


@given(addrs=addresses, default=defaults, levels=sticky)
@settings(max_examples=60, deadline=None)
def test_stats_always_consistent(addrs, default, levels):
    cache = DynamicExclusionCache(
        CacheGeometry(64, 4),
        store=IdealHitLastStore(default=default),
        sticky_levels=levels,
    )
    stats = cache.simulate(itrace(addrs))
    stats.check()
    assert stats.accesses == len(addrs)


@given(addrs=addresses, default=defaults)
@settings(max_examples=60, deadline=None)
def test_optimal_is_a_lower_bound(addrs, default):
    """No realizable policy may beat Belady-with-bypass."""
    trace = itrace(addrs)
    geometry = CacheGeometry(64, 4)
    optimal = OptimalDirectMappedCache(geometry).simulate(trace)
    exclusion = DynamicExclusionCache(
        geometry, store=IdealHitLastStore(default=default)
    ).simulate(trace)
    assert exclusion.misses >= optimal.misses


@given(addrs=addresses, default=defaults)
@settings(max_examples=60, deadline=None)
def test_hits_only_on_resident_lines(addrs, default):
    geometry = CacheGeometry(64, 4)
    cache = DynamicExclusionCache(
        geometry, store=IdealHitLastStore(default=default)
    )
    resident = dict.fromkeys(range(geometry.num_sets))
    for addr in addrs:
        line = geometry.line_address(addr)
        index = geometry.set_index_of_line(line)
        result = cache.access(addr)
        if result.hit:
            assert resident[index] == line
        elif not result.bypassed:
            resident[index] = line  # loaded


@given(addrs=addresses, default=defaults)
@settings(max_examples=60, deadline=None)
def test_bypass_leaves_contents_untouched(addrs, default):
    geometry = CacheGeometry(64, 4)
    cache = DynamicExclusionCache(
        geometry, store=IdealHitLastStore(default=default)
    )
    for addr in addrs:
        before = cache.resident_lines()
        result = cache.access(addr)
        if result.bypassed:
            assert cache.resident_lines() == before


@given(addrs=addresses)
@settings(max_examples=40, deadline=None)
def test_hashed_store_cache_is_well_behaved(addrs):
    """The hashed store may mispredict but never corrupts the cache:
    stats stay consistent and hits imply residency."""
    geometry = CacheGeometry(64, 4)
    cache = DynamicExclusionCache(
        geometry, store=HashedHitLastStore(num_bits=16)
    )
    stats = cache.simulate(itrace(addrs))
    stats.check()


@given(addrs=addresses, default=defaults)
@settings(max_examples=40, deadline=None)
def test_misses_bounded_by_double_direct_mapped(addrs, default):
    """A sticky bit delays reloading by at most one access per conflict,
    so DE can at worst roughly double the DM misses; in practice the
    bound below (DM misses + trace length slack) is loose but proves the
    policy cannot diverge."""
    trace = itrace(addrs)
    geometry = CacheGeometry(64, 4)
    dm = DirectMappedCache(geometry).simulate(trace)
    de = DynamicExclusionCache(
        geometry, store=IdealHitLastStore(default=default)
    ).simulate(trace)
    assert de.misses <= 2 * dm.misses
