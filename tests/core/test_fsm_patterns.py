"""The paper's Section 3/4 worked examples, checked miss by miss.

These are the paper's central analytic claims: on each common pattern
the dynamic-exclusion cache converges to the optimal direct-mapped
behaviour within at most two extra misses regardless of initial state.
"""

import pytest

from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.geometry import CacheGeometry
from repro.caches.optimal import OptimalDirectMappedCache
from repro.core.exclusion_cache import DynamicExclusionCache
from repro.core.hitlast import IdealHitLastStore
from repro.workloads import patterns

GEOMETRY = CacheGeometry(32 * 1024, 4)


def de_cache(default):
    return DynamicExclusionCache(GEOMETRY, store=IdealHitLastStore(default=default))


def misses(cache, trace):
    return cache.simulate(trace).misses


class TestBetweenLoops:
    """(a^10 b^10)^10 — direct-mapped is already optimal (10%)."""

    trace = patterns.between_loops(GEOMETRY)

    def test_direct_mapped_matches_paper(self):
        assert misses(DirectMappedCache(GEOMETRY), self.trace) == 20

    def test_optimal_matches_paper(self):
        assert misses(OptimalDirectMappedCache(GEOMETRY), self.trace) == 20

    @pytest.mark.parametrize("default", [True, False])
    def test_exclusion_within_two_of_optimal(self, default):
        de = misses(de_cache(default), self.trace)
        assert 20 <= de <= 22

    def test_exclusion_miss_rate_close_to_ten_percent(self):
        de = misses(de_cache(True), self.trace)
        assert de / len(self.trace) == pytest.approx(0.10, abs=0.02)


class TestLoopLevel:
    """(a^10 b)^10 — paper: DM 18%, optimal 10%, DE within 2 misses."""

    trace = patterns.loop_level(GEOMETRY)

    def test_direct_mapped_matches_paper(self):
        assert misses(DirectMappedCache(GEOMETRY), self.trace) == 20

    def test_optimal_matches_paper(self):
        assert misses(OptimalDirectMappedCache(GEOMETRY), self.trace) == 11

    @pytest.mark.parametrize("default", [True, False])
    def test_exclusion_within_two_of_optimal(self, default):
        de = misses(de_cache(default), self.trace)
        assert 11 <= de <= 13

    def test_b_is_eventually_locked_out(self):
        """After training, b bypasses forever: its hit-last bit is reset
        and the sticky bit protects a (the paper's key worked example)."""
        cache = de_cache(True)
        cache.simulate(self.trace)
        a, b = patterns.conflicting_addresses(GEOMETRY, 2)
        assert cache.contains(a)
        assert not cache.contains(b)
        assert cache.store.lookup(GEOMETRY.line_address(b)) is False


class TestWithinLoop:
    """(a b)^10 — paper: DM 100%, optimal 55%, DE keeps one of the two."""

    trace = patterns.within_loop(GEOMETRY)

    def test_direct_mapped_matches_paper(self):
        assert misses(DirectMappedCache(GEOMETRY), self.trace) == 20

    def test_optimal_matches_paper(self):
        assert misses(OptimalDirectMappedCache(GEOMETRY), self.trace) == 11

    @pytest.mark.parametrize("default", [True, False])
    def test_exclusion_roughly_halves_misses(self, default):
        de = misses(de_cache(default), self.trace)
        assert 11 <= de <= 13

    def test_one_instruction_stays_resident(self):
        cache = de_cache(True)
        cache.simulate(self.trace)
        a, b = patterns.conflicting_addresses(GEOMETRY, 2)
        assert cache.contains(a) or cache.contains(b)


class TestThreeWay:
    """(a b c)^10 — defeats the single sticky bit (paper Section 5)."""

    trace = patterns.three_way(GEOMETRY)

    def test_direct_mapped_misses_everything(self):
        assert misses(DirectMappedCache(GEOMETRY), self.trace) == 30

    def test_single_sticky_exclusion_misses_everything(self):
        assert misses(de_cache(True), self.trace) == 30

    def test_optimal_locks_one_instruction(self):
        assert misses(OptimalDirectMappedCache(GEOMETRY), self.trace) == 21

    def test_extra_sticky_bits_help_here(self):
        """With more sticky levels the FSM can hold one instruction in
        (the McF91a extension); the paper notes this helps this pattern
        but hurts others."""
        cache = DynamicExclusionCache(
            GEOMETRY, store=IdealHitLastStore(default=False), sticky_levels=3
        )
        assert cache.simulate(self.trace).misses < 30


class TestAnalyticHelpers:
    def test_expected_counts_are_self_consistent(self):
        assert patterns.between_loops_misses_dm() == 20
        assert patterns.between_loops_misses_optimal() == 20
        assert patterns.loop_level_misses_dm() == 20
        assert patterns.loop_level_misses_optimal() == 11
        assert patterns.within_loop_misses_dm() == 20
        assert patterns.within_loop_misses_optimal() == 11
        assert patterns.three_way_misses_dm() == 30
        assert patterns.three_way_misses_optimal() == 21

    def test_scaling_with_parameters(self):
        assert patterns.loop_level_misses_dm(inner=5, outer=7) == 14
        assert patterns.loop_level_misses_optimal(inner=5, outer=7) == 8
        assert patterns.within_loop_misses_optimal(trips=4) == 5
