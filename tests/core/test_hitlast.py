"""Tests for the hit-last storage strategies."""

import pytest

from repro.core.hitlast import (
    HashedHitLastStore,
    IdealHitLastStore,
    L2BackedHitLastStore,
    make_hitlast_store,
)


class TestIdealStore:
    def test_default_polarity(self):
        assert IdealHitLastStore(default=True).lookup(1) is True
        assert IdealHitLastStore(default=False).lookup(1) is False

    def test_update_then_lookup(self):
        store = IdealHitLastStore(default=True)
        store.update(5, False)
        assert store.lookup(5) is False
        assert store.lookup(6) is True

    def test_reset(self):
        store = IdealHitLastStore(default=True)
        store.update(5, False)
        store.reset()
        assert store.lookup(5) is True
        assert len(store) == 0

    def test_len_counts_entries(self):
        store = IdealHitLastStore()
        store.update(1, True)
        store.update(2, False)
        store.update(1, False)
        assert len(store) == 2


class TestHashedStore:
    def test_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            HashedHitLastStore(12)

    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            HashedHitLastStore(0)

    def test_update_then_lookup(self):
        store = HashedHitLastStore(64, default=True)
        store.update(5, False)
        assert store.lookup(5) is False

    def test_collisions_share_a_bit(self):
        store = HashedHitLastStore(4, default=True)
        # Find two words that collide.
        target = store._index(0)
        collider = next(
            w for w in range(1, 10_000) if store._index(w) == target
        )
        store.update(0, False)
        assert store.lookup(collider) is False

    def test_low_bits_index_the_table(self):
        """Adjacent words get distinct bits; words one table-size
        apart collide (the paper's untagged low-address indexing)."""
        store = HashedHitLastStore(1 << 14)
        assert store._index(5) != store._index(6)
        assert store._index(7) == store._index(7 + (1 << 14))

    def test_reset(self):
        store = HashedHitLastStore(16, default=True)
        store.update(3, False)
        store.reset()
        assert store.lookup(3) is True


class TestL2BackedStore:
    def _store(self, resident_lines, assume_hit, record_when_absent=False):
        return L2BackedHitLastStore(
            resident=lambda line: line in resident_lines,
            l2_line_of=lambda word: word,  # identity for simplicity
            assume_hit=assume_hit,
            record_when_absent=record_when_absent,
        )

    def test_assume_hit_fallback(self):
        store = self._store(set(), assume_hit=True)
        assert store.lookup(7) is True

    def test_assume_miss_fallback(self):
        store = self._store(set(), assume_hit=False)
        assert store.lookup(7) is False

    def test_resident_word_uses_stored_bit(self):
        resident = {7}
        store = self._store(resident, assume_hit=True)
        store.update(7, False)
        assert store.lookup(7) is False

    def test_update_to_absent_word_dropped(self):
        resident = {1}
        store = self._store(resident, assume_hit=False)
        store.update(7, True)
        resident.add(7)
        # The bit was dropped, so the stored default applies.
        assert store.lookup(7) is False

    def test_record_when_absent_keeps_bit(self):
        resident = set()
        store = self._store(resident, assume_hit=False, record_when_absent=True)
        store.update(7, True)
        resident.add(7)  # victim transfer completes
        assert store.lookup(7) is True

    def test_invalidate_specific_words(self):
        resident = {7}
        store = self._store(resident, assume_hit=True)
        store.update(7, False)
        store.invalidate(7, words={7})
        assert store.lookup(7) is True

    def test_invalidate_sweep(self):
        resident = {7}
        store = self._store(resident, assume_hit=True)
        store.update(7, False)
        store.invalidate(7)
        assert store.lookup(7) is True

    def test_reset(self):
        resident = {7}
        store = self._store(resident, assume_hit=True)
        store.update(7, False)
        store.reset()
        assert store.lookup(7) is True


class TestFactory:
    def test_ideal(self):
        assert isinstance(make_hitlast_store("ideal"), IdealHitLastStore)

    def test_hashed(self):
        store = make_hitlast_store("hashed", num_bits=16)
        assert isinstance(store, HashedHitLastStore)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_hitlast_store("mystery")
