"""Tests for Section 6 scheme 3: exclusion with a stream buffer."""

import pytest

from repro.caches.geometry import CacheGeometry
from repro.core.exclusion_cache import DynamicExclusionCache
from repro.core.hitlast import IdealHitLastStore
from repro.core.long_lines import (
    ExclusionStreamBufferCache,
    LastLineBufferCache,
)
from repro.trace.trace import Trace

GEOMETRY = CacheGeometry(64, 16)


def itrace(addrs):
    return Trace(addrs, [0] * len(addrs))


def make_cache(depth=4, default=True):
    inner = DynamicExclusionCache(GEOMETRY, store=IdealHitLastStore(default=default))
    return ExclusionStreamBufferCache(inner, depth=depth)


class TestBasics:
    def test_depth_must_be_positive(self):
        inner = DynamicExclusionCache(GEOMETRY)
        with pytest.raises(ValueError):
            ExclusionStreamBufferCache(inner, depth=0)

    def test_within_line_run_served_without_fsm(self):
        cache = make_cache()
        cache.access(0)
        inner_events = cache.inner.stats.accesses
        cache.access(4)  # same 16B line
        assert cache.inner.stats.accesses == inner_events
        assert cache.stats.buffer_hits == 1

    def test_sequential_lines_prefetched(self):
        cache = make_cache(depth=4)
        stats = cache.simulate(itrace([0, 16, 32, 48]))
        # First line misses; the following three come from the stream.
        assert stats.misses == 1
        assert stats.buffer_hits == 3

    def test_prefetched_lines_enter_fsm(self):
        cache = make_cache(depth=4)
        cache.simulate(itrace([0, 16]))
        # Line 1 (addr 16) was a prefetch hit but the FSM stored it.
        assert cache.inner.contains(16)

    def test_non_sequential_jump_misses_and_restarts(self):
        cache = make_cache(depth=2)
        cache.access(0)
        result = cache.access(128)
        assert result.miss
        assert cache.access(144).hit  # new stream covers the next line

    def test_stream_extends_on_hits(self):
        cache = make_cache(depth=1)
        stats = cache.simulate(itrace([0, 16, 32, 48]))
        assert stats.misses == 1  # depth 1 keeps re-extending

    def test_stats_consistent(self):
        import random
        rng = random.Random(3)
        addrs = [rng.randrange(64) * 4 for _ in range(500)]
        stats = make_cache().simulate(itrace(addrs))
        stats.check()

    def test_reset(self):
        cache = make_cache()
        cache.simulate(itrace([0, 16, 32]))
        cache.reset()
        assert cache.stats.accesses == 0
        assert cache.inner.stats.accesses == 0
        assert cache.resident_lines() == frozenset()


class TestAgainstLastLineScheme:
    def test_never_more_memory_misses_on_sequential_code(self):
        """The stream scheme hides sequential fetches the last-line
        scheme pays for."""
        addrs = list(range(0, 512, 4))  # straight-line code
        stream = make_cache(depth=4).simulate(itrace(addrs))
        last_line = LastLineBufferCache(
            DynamicExclusionCache(GEOMETRY, store=IdealHitLastStore())
        ).simulate(itrace(addrs))
        assert stream.misses < last_line.misses

    def test_conflict_pattern_still_excluded(self):
        """Exclusion behaviour survives the prefetcher: the loop-level
        pattern converges to keeping the hot line."""
        hot, cold = 0, 64  # same set in the 64B cache
        addrs = []
        for _ in range(10):
            addrs.extend([hot] * 5)
            addrs.append(cold)
        cache = make_cache(depth=2, default=False)
        cache.simulate(itrace(addrs))
        assert cache.inner.contains(hot)
        assert not cache.inner.contains(cold)

    def test_resident_lines_include_last_line(self):
        cache = make_cache(default=False)
        cache.access(0)
        cache.access(128)  # bypassed by the FSM but current line
        assert GEOMETRY.line_address(128) in cache.resident_lines()
