"""Tests for the production DynamicExclusionCache, including a full
differential check against the readable reference FSM."""

import random

import pytest

from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.geometry import CacheGeometry
from repro.core.exclusion_cache import DynamicExclusionCache
from repro.core.fsm import Decision, DynamicExclusionFSM, LineState
from repro.core.hitlast import IdealHitLastStore
from repro.trace.trace import Trace


def itrace(addrs):
    return Trace(addrs, [0] * len(addrs))


class TestBasics:
    def test_requires_direct_mapped(self):
        with pytest.raises(ValueError):
            DynamicExclusionCache(CacheGeometry(64, 4, associativity=2))

    def test_requires_positive_sticky(self):
        with pytest.raises(ValueError):
            DynamicExclusionCache(CacheGeometry(64, 4), sticky_levels=0)

    def test_default_store_is_ideal(self):
        cache = DynamicExclusionCache(CacheGeometry(64, 4))
        assert isinstance(cache.store, IdealHitLastStore)

    def test_cold_miss_loads(self):
        cache = DynamicExclusionCache(CacheGeometry(64, 4))
        result = cache.access(0)
        assert result.miss and not result.bypassed
        assert cache.contains(0)

    def test_hit(self):
        cache = DynamicExclusionCache(CacheGeometry(64, 4))
        cache.access(0)
        assert cache.access(0).hit

    def test_bypass_reported(self):
        cache = DynamicExclusionCache(
            CacheGeometry(64, 4), store=IdealHitLastStore(default=False)
        )
        cache.access(0)
        result = cache.access(64)
        assert result.miss and result.bypassed
        assert cache.stats.bypasses == 1
        assert cache.contains(0)
        assert not cache.contains(64)

    def test_eviction_reports_line(self):
        cache = DynamicExclusionCache(
            CacheGeometry(64, 4), store=IdealHitLastStore(default=False)
        )
        cache.access(0)
        cache.access(64)  # bypass, sticky 0
        result = cache.access(64)  # replace
        assert result.evicted_line == 0

    def test_line_state_snapshot(self):
        cache = DynamicExclusionCache(CacheGeometry(64, 4))
        cache.access(0)
        state = cache.line_state(0)
        assert state.tag == 0
        assert state.sticky == 1
        assert state.hit_last

    def test_flush_hitlast_writes_resident_bits(self):
        store = IdealHitLastStore(default=False)
        cache = DynamicExclusionCache(CacheGeometry(64, 4), store=store)
        cache.access(0)
        cache.access(0)  # hit: hl set
        cache.flush_hitlast()
        assert store.lookup(0) is True

    def test_reset_clears_everything(self):
        store = IdealHitLastStore(default=False)
        cache = DynamicExclusionCache(CacheGeometry(64, 4), store=store)
        cache.access(0)
        cache.access(0)
        cache.flush_hitlast()
        cache.reset()
        assert cache.stats.accesses == 0
        assert cache.resident_lines() == frozenset()
        assert store.lookup(0) is False  # store reset too

    def test_stats_consistent_on_random_trace(self):
        rng = random.Random(0)
        addrs = [rng.randrange(64) * 4 for _ in range(500)]
        cache = DynamicExclusionCache(CacheGeometry(64, 4))
        stats = cache.simulate(itrace(addrs))
        stats.check()

    @pytest.mark.parametrize("sticky_levels", [1, 2])
    def test_stats_fast_path_matches_access_loop(self, sticky_levels):
        # simulate() uses a stats-only loop; it must agree with the
        # per-reference access() path, carry identical hit-last state,
        # and resume correctly on a warm cache.
        rng = random.Random(11)
        addrs = [rng.randrange(64) * 4 for _ in range(500)]
        looped = DynamicExclusionCache(
            CacheGeometry(64, 4), sticky_levels=sticky_levels
        )
        for addr in addrs:
            looped.access(addr)
        fast = DynamicExclusionCache(
            CacheGeometry(64, 4), sticky_levels=sticky_levels
        )
        fast.simulate(itrace(addrs))
        fast.simulate(itrace(addrs))  # warm resume
        for addr in addrs:
            looped.access(addr)
        assert fast.stats == looped.stats
        assert fast.resident_lines() == looped.resident_lines()


class _ReferenceModel:
    """A DE cache built directly on the readable FSM, used as the
    differential-testing oracle."""

    def __init__(self, geometry, store, sticky_levels=1):
        self.geometry = geometry
        self.fsm = DynamicExclusionFSM(store, sticky_levels)
        self.lines = [LineState() for _ in range(geometry.num_sets)]

    def access(self, addr):
        line_addr = self.geometry.line_address(addr)
        index = self.geometry.set_index_of_line(line_addr)
        return self.fsm.step(self.lines[index], line_addr)


class TestDifferentialAgainstFSM:
    @pytest.mark.parametrize("default", [True, False])
    @pytest.mark.parametrize("sticky_levels", [1, 2, 3])
    def test_matches_reference_model(self, default, sticky_levels):
        geometry = CacheGeometry(64, 4)
        fast = DynamicExclusionCache(
            geometry,
            store=IdealHitLastStore(default=default),
            sticky_levels=sticky_levels,
        )
        slow = _ReferenceModel(
            geometry, IdealHitLastStore(default=default), sticky_levels
        )
        rng = random.Random(42)
        for step in range(3000):
            addr = rng.randrange(80) * 4
            fast_result = fast.access(addr)
            decision = slow.access(addr)
            if decision is Decision.HIT:
                assert fast_result.hit, f"step {step}"
            elif decision is Decision.BYPASS:
                assert fast_result.miss and fast_result.bypassed, f"step {step}"
            else:
                assert fast_result.miss and not fast_result.bypassed, f"step {step}"
        # Final contents must agree too.
        reference_lines = {
            state.tag for state in slow.lines if state.tag is not None
        }
        assert fast.resident_lines() == reference_lines


class TestAgainstDirectMapped:
    def test_exclusion_never_hits_unseen_lines(self):
        geometry = CacheGeometry(64, 4)
        cache = DynamicExclusionCache(geometry)
        seen = set()
        rng = random.Random(1)
        for _ in range(1000):
            addr = rng.randrange(64) * 4
            line = geometry.line_address(addr)
            if cache.access(addr).hit:
                assert line in seen
            seen.add(line)

    def test_exclusion_helps_on_conflict_heavy_trace(self):
        """On a trace dominated by two-way alternation DE must beat DM."""
        geometry = CacheGeometry(64, 4)
        addrs = []
        for _ in range(50):
            addrs.extend([0, 64])  # conflict pair
            addrs.extend([4, 8, 12])  # private hits
        trace = itrace(addrs)
        dm = DirectMappedCache(geometry).simulate(trace)
        de = DynamicExclusionCache(geometry).simulate(trace)
        assert de.misses < dm.misses
