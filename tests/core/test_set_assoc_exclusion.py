"""Tests for the set-associative dynamic-exclusion extension."""

import random

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.caches.geometry import CacheGeometry
from repro.caches.optimal import OptimalCache
from repro.caches.set_associative import SetAssociativeCache
from repro.core.exclusion_cache import DynamicExclusionCache
from repro.core.hitlast import IdealHitLastStore
from repro.core.set_assoc_exclusion import SetAssociativeExclusionCache
from repro.trace.trace import Trace


def itrace(addrs):
    return Trace(addrs, [0] * len(addrs))


class TestBasics:
    def test_requires_positive_sticky(self):
        with pytest.raises(ValueError):
            SetAssociativeExclusionCache(CacheGeometry(64, 4), sticky_levels=0)

    def test_hit_after_fill(self):
        cache = SetAssociativeExclusionCache(CacheGeometry(64, 4, associativity=2))
        cache.access(0)
        assert cache.access(0).hit

    def test_two_conflicting_lines_coexist(self):
        cache = SetAssociativeExclusionCache(CacheGeometry(64, 4, associativity=2))
        cache.access(0)
        cache.access(64)
        assert cache.access(0).hit
        assert cache.access(64).hit

    def test_bypass_when_lru_way_sticky(self):
        cache = SetAssociativeExclusionCache(
            CacheGeometry(8, 4, associativity=2),
            store=IdealHitLastStore(default=False),
        )
        cache.access(0)
        cache.access(4)
        result = cache.access(8)  # both ways sticky, h[8]=0
        assert result.miss and result.bypassed
        assert cache.access(0).hit

    def test_second_conflict_replaces_lru(self):
        cache = SetAssociativeExclusionCache(
            CacheGeometry(8, 4, associativity=2),
            store=IdealHitLastStore(default=False),
        )
        cache.access(0)
        cache.access(4)
        cache.access(8)   # bypass; LRU way (holding 0) loses a life
        result = cache.access(8)  # now replaces the LRU way
        assert result.miss and not result.bypassed
        assert result.evicted_line == 0

    def test_hitlast_gate_overrides_sticky(self):
        store = IdealHitLastStore(default=False)
        store.update(2, True)  # line address of 8 with 4B lines
        cache = SetAssociativeExclusionCache(
            CacheGeometry(8, 4, associativity=2), store=store
        )
        cache.access(0)
        cache.access(4)
        result = cache.access(8)
        assert result.miss and not result.bypassed

    def test_reset(self):
        cache = SetAssociativeExclusionCache(CacheGeometry(64, 4, associativity=2))
        cache.access(0)
        cache.reset()
        assert cache.stats.accesses == 0
        assert cache.resident_lines() == frozenset()


class TestReducesToDirectMapped:
    @pytest.mark.parametrize("default", [True, False])
    @pytest.mark.parametrize("sticky_levels", [1, 2])
    def test_one_way_matches_exclusion_cache(self, default, sticky_levels):
        geometry = CacheGeometry(64, 4, associativity=1)
        assoc = SetAssociativeExclusionCache(
            geometry,
            store=IdealHitLastStore(default=default),
            sticky_levels=sticky_levels,
        )
        direct = DynamicExclusionCache(
            CacheGeometry(64, 4),
            store=IdealHitLastStore(default=default),
            sticky_levels=sticky_levels,
        )
        rng = random.Random(11)
        for _ in range(2000):
            addr = rng.randrange(64) * 4
            a = assoc.access(addr)
            b = direct.access(addr)
            assert (a.hit, a.bypassed) == (b.hit, b.bypassed)
        assert assoc.resident_lines() == direct.resident_lines()


class TestAgainstPlainLRU:
    def test_cyclic_pattern_fixed(self):
        """(a b c)^n in a 2-way set: plain LRU misses everything; the
        exclusion gate pins two of the three."""
        geometry = CacheGeometry(8, 4, associativity=2)
        addrs = [0, 4, 8] * 30
        lru = SetAssociativeCache(geometry).simulate(itrace(addrs))
        excl = SetAssociativeExclusionCache(
            geometry, store=IdealHitLastStore(default=False)
        ).simulate(itrace(addrs))
        assert lru.misses == 90
        assert excl.misses < 45

    def test_lru_friendly_pattern_not_ruined(self):
        """On a pattern LRU already handles, exclusion must stay close."""
        geometry = CacheGeometry(8, 4, associativity=2)
        addrs = [0, 4] * 50
        lru = SetAssociativeCache(geometry).simulate(itrace(addrs))
        excl = SetAssociativeExclusionCache(geometry).simulate(itrace(addrs))
        assert excl.misses <= lru.misses + 2


addresses = st.lists(
    st.integers(min_value=0, max_value=127).map(lambda s: s * 4),
    min_size=1,
    max_size=200,
)


@given(addrs=addresses, default=st.booleans(), ways=st.sampled_from([1, 2, 4]))
@settings(max_examples=50, deadline=None)
def test_stats_consistent(addrs, default, ways):
    geometry = CacheGeometry(64, 4, associativity=ways)
    cache = SetAssociativeExclusionCache(
        geometry, store=IdealHitLastStore(default=default)
    )
    stats = cache.simulate(itrace(addrs))
    stats.check()
    assert stats.accesses == len(addrs)


@given(addrs=addresses, default=st.booleans())
@settings(max_examples=50, deadline=None)
def test_optimal_is_still_a_lower_bound(addrs, default):
    geometry = CacheGeometry(64, 4, associativity=2)
    trace = itrace(addrs)
    excl = SetAssociativeExclusionCache(
        geometry, store=IdealHitLastStore(default=default)
    ).simulate(trace)
    optimal = OptimalCache(geometry).simulate(trace)
    assert excl.misses >= optimal.misses


@given(addrs=addresses)
@settings(max_examples=50, deadline=None)
def test_hits_require_prior_access(addrs):
    geometry = CacheGeometry(64, 4, associativity=2)
    cache = SetAssociativeExclusionCache(geometry)
    seen = set()
    for addr in addrs:
        line = geometry.line_address(addr)
        if cache.access(addr).hit:
            assert line in seen
        seen.add(line)
