"""Tests for the Section 6 long-line support."""

import pytest

from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.geometry import CacheGeometry
from repro.core.exclusion_cache import DynamicExclusionCache
from repro.core.hitlast import IdealHitLastStore
from repro.core.long_lines import (
    InstructionRegisterCache,
    LastLineBufferCache,
    make_long_line_exclusion_cache,
)
from repro.trace.reference import RefKind
from repro.trace.trace import Trace


def itrace(addrs):
    return Trace(addrs, [0] * len(addrs))


class TestLastLineBuffer:
    def test_sequential_words_hit_in_buffer(self):
        cache = make_long_line_exclusion_cache(CacheGeometry(64, 16))
        stats = cache.simulate(itrace([0, 4, 8, 12]))
        assert stats.misses == 1
        assert stats.buffer_hits == 3

    def test_buffer_hit_does_not_touch_fsm(self):
        geometry = CacheGeometry(64, 16)
        cache = make_long_line_exclusion_cache(geometry)
        cache.access(0)
        inner_accesses = cache.inner.stats.accesses
        cache.access(4)  # same line: buffer hit
        assert cache.inner.stats.accesses == inner_accesses

    def test_line_change_is_one_fsm_event(self):
        geometry = CacheGeometry(64, 16)
        cache = make_long_line_exclusion_cache(geometry)
        cache.simulate(itrace([0, 4, 16, 20, 0]))
        assert cache.inner.stats.accesses == 3  # lines 0, 1, 0

    def test_excluded_line_still_served_sequentially(self):
        """A bypassed line costs one miss; its other words come from
        the buffer — the paper's spatial-locality rescue."""
        geometry = CacheGeometry(64, 16)
        store = IdealHitLastStore(default=False)
        cache = make_long_line_exclusion_cache(geometry, store=store)
        cache.simulate(itrace([0, 4, 8, 12]))  # line 0 resident
        stats_before = cache.stats.misses
        # Conflicting line (64 bytes later at cache size 64): bypassed.
        result_stats = cache.simulate(itrace([64, 68, 72, 76]))
        assert result_stats.misses - stats_before == 1
        assert cache.inner.contains(0)
        assert not cache.inner.contains(64)

    def test_alternating_line_pairs_behave_like_word_pairs(self):
        """With the buffer, line-granular DE sees the same (a b)^n
        pattern Section 3 analyses."""
        geometry = CacheGeometry(64, 16)
        addrs = []
        for _ in range(10):
            addrs.extend([0, 4, 64, 68])
        de = make_long_line_exclusion_cache(
            geometry, store=IdealHitLastStore(default=False)
        ).simulate(itrace(addrs))
        dm = DirectMappedCache(geometry).simulate(itrace(addrs))
        assert dm.misses == 20
        assert de.misses <= 12

    def test_resident_lines_include_buffer(self):
        cache = make_long_line_exclusion_cache(
            CacheGeometry(64, 16), store=IdealHitLastStore(default=False)
        )
        cache.access(0)
        cache.access(64)  # bypassed but in the buffer
        assert geometry_lines(cache) >= {0, 4}

    def test_reset(self):
        cache = make_long_line_exclusion_cache(CacheGeometry(64, 16))
        cache.access(0)
        cache.reset()
        assert cache.stats.accesses == 0
        assert cache.inner.stats.accesses == 0

    def test_wrapper_stats_consistent(self):
        cache = make_long_line_exclusion_cache(CacheGeometry(64, 16))
        stats = cache.simulate(itrace([0, 4, 64, 68, 0, 128]))
        stats.check()

    def test_wraps_any_cache(self):
        wrapped = LastLineBufferCache(DirectMappedCache(CacheGeometry(64, 16)))
        stats = wrapped.simulate(itrace([0, 4, 8, 12]))
        assert stats.misses == 1


def geometry_lines(cache):
    return set(cache.resident_lines())


class TestInstructionRegister:
    def test_only_instruction_runs_use_register(self):
        inner = DynamicExclusionCache(CacheGeometry(64, 16))
        cache = InstructionRegisterCache(inner)
        trace = Trace(
            [0, 4, 8],
            [int(RefKind.IFETCH), int(RefKind.LOAD), int(RefKind.IFETCH)],
        )
        stats = cache.simulate(trace)
        # The load at 4 goes to the inner cache (hit: line 0 resident);
        # the ifetch at 8 hits the register.
        assert stats.buffer_hits == 1
        assert stats.misses == 1

    def test_pure_instruction_stream_matches_last_line_buffer(self):
        geometry = CacheGeometry(64, 16)
        addrs = [0, 4, 64, 68, 0, 4, 16, 20]
        register = InstructionRegisterCache(DynamicExclusionCache(geometry))
        buffer = LastLineBufferCache(DynamicExclusionCache(geometry))
        a = register.simulate(itrace(addrs))
        b = buffer.simulate(itrace(addrs))
        assert a.misses == b.misses
        assert a.buffer_hits == b.buffer_hits

    def test_reset(self):
        cache = InstructionRegisterCache(DynamicExclusionCache(CacheGeometry(64, 16)))
        cache.access(0)
        cache.reset()
        assert cache.stats.accesses == 0
