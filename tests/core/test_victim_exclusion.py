"""Tests for the exclusion + victim-buffer hybrid."""

import random

import pytest

from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.geometry import CacheGeometry
from repro.caches.victim import VictimCache
from repro.core.exclusion_cache import DynamicExclusionCache
from repro.core.hitlast import IdealHitLastStore
from repro.core.victim_exclusion import ExclusionVictimCache
from repro.trace.trace import Trace

GEOMETRY = CacheGeometry(64, 4)


def itrace(addrs):
    return Trace(addrs, [0] * len(addrs))


class TestBasics:
    def test_entries_must_be_positive(self):
        with pytest.raises(ValueError):
            ExclusionVictimCache(GEOMETRY, entries=0)

    def test_hits_pass_through(self):
        cache = ExclusionVictimCache(GEOMETRY)
        cache.access(0)
        assert cache.access(0).hit

    def test_eviction_lands_in_buffer(self):
        cache = ExclusionVictimCache(
            GEOMETRY, store=IdealHitLastStore(default=True)
        )
        cache.access(0)
        cache.access(64)  # default=True loads immediately, evicting 0
        assert 0 in cache.resident_lines()
        assert cache.access(0).hit
        assert cache.stats.buffer_hits == 1

    def test_bypassed_words_do_not_pollute_buffer(self):
        cache = ExclusionVictimCache(
            GEOMETRY, entries=1, store=IdealHitLastStore(default=False)
        )
        cache.access(0)
        cache.access(64)  # bypassed
        # The buffer is still empty: a second distinct conflicting word
        # should also miss rather than hit a polluted buffer.
        assert 16 not in cache.resident_lines()
        assert cache.stats.buffer_hits == 0

    def test_stats_consistent(self):
        rng = random.Random(4)
        cache = ExclusionVictimCache(GEOMETRY, entries=4)
        stats = cache.simulate(itrace([rng.randrange(64) * 4 for _ in range(600)]))
        stats.check()

    def test_reset(self):
        cache = ExclusionVictimCache(GEOMETRY)
        cache.access(0)
        cache.access(64)
        cache.reset()
        assert cache.stats.accesses == 0
        assert cache.resident_lines() == frozenset()


class TestAgainstComponents:
    def test_three_way_rotation_beats_exclusion_alone(self):
        """(a b c)^n defeats the lone FSM; the buffer catches the
        rotating victims."""
        addrs = [0, 64, 128] * 30
        hybrid = ExclusionVictimCache(
            GEOMETRY, entries=2, store=IdealHitLastStore(default=True)
        ).simulate(itrace(addrs))
        exclusion = DynamicExclusionCache(
            GEOMETRY, store=IdealHitLastStore(default=True)
        ).simulate(itrace(addrs))
        assert hybrid.misses < exclusion.misses

    def test_never_worse_than_direct_mapped_on_random(self):
        rng = random.Random(8)
        addrs = [rng.randrange(96) * 4 for _ in range(1500)]
        hybrid = ExclusionVictimCache(
            GEOMETRY, entries=4, store=IdealHitLastStore(default=True)
        ).simulate(itrace(addrs))
        direct = DirectMappedCache(GEOMETRY).simulate(itrace(addrs))
        assert hybrid.misses <= direct.misses

    def test_combines_both_mechanisms_on_mixed_pattern(self):
        """A stream with both a ping-pong pair (exclusion's target) and
        a 3-way rotation (the victim buffer's target): the hybrid beats
        either mechanism alone."""
        addrs = []
        for _ in range(40):
            addrs.extend([0, 64])            # set 0: ping-pong
            addrs.extend([4, 68, 132])       # set 1: rotation
        trace = itrace(addrs)
        hybrid = ExclusionVictimCache(
            GEOMETRY, entries=1, store=IdealHitLastStore(default=True)
        ).simulate(trace)
        exclusion = DynamicExclusionCache(
            GEOMETRY, store=IdealHitLastStore(default=True)
        ).simulate(trace)
        victim = VictimCache(GEOMETRY, entries=1).simulate(trace)
        assert hybrid.misses < exclusion.misses
        assert hybrid.misses < victim.misses
