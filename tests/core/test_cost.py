"""Tests for the hardware cost model (Figure 13 support)."""

import math

import pytest

from repro.caches.geometry import CacheGeometry
from repro.core.cost import (
    EfficiencyRow,
    direct_mapped_bits,
    doubling_efficiency,
    exclusion_efficiency,
    exclusion_overhead_bits,
)


class TestDirectMappedBits:
    def test_counts_data_tag_valid(self):
        # 8KB, 16B lines, 32-bit addresses: 512 lines,
        # tag = 32 - 4 - 9 = 19 bits; per line 128 + 19 + 1 = 148.
        geometry = CacheGeometry(8 * 1024, 16)
        assert direct_mapped_bits(geometry) == 512 * 148

    def test_doubling_size_slightly_less_than_doubles_bits(self):
        # The doubled cache has one less tag bit per line.
        geometry = CacheGeometry(8 * 1024, 16)
        small = direct_mapped_bits(geometry)
        large = direct_mapped_bits(geometry.scaled(2))
        assert small < large < 2 * small

    def test_address_width_parameter(self):
        geometry = CacheGeometry(8 * 1024, 16)
        assert direct_mapped_bits(geometry, address_bits=40) > direct_mapped_bits(geometry)


class TestOverheadBits:
    def test_single_sticky_hashed_four_plus_buffer(self):
        geometry = CacheGeometry(8 * 1024, 16)
        bits = exclusion_overhead_bits(geometry)
        # 512 lines x (1 sticky + 4 hashed) + 16B buffer + last-tag.
        expected = 512 * 5 + 16 * 8 + (32 - 4) + 1
        assert bits == expected

    def test_without_buffer(self):
        geometry = CacheGeometry(8 * 1024, 16)
        assert exclusion_overhead_bits(geometry, last_line_buffer=False) == 512 * 5

    def test_multi_sticky_needs_more_bits(self):
        geometry = CacheGeometry(8 * 1024, 16)
        one = exclusion_overhead_bits(geometry, sticky_levels=1, last_line_buffer=False)
        three = exclusion_overhead_bits(geometry, sticky_levels=3, last_line_buffer=False)
        assert three - one == geometry.num_lines  # 2 bits vs 1 bit

    def test_overhead_is_small_fraction(self):
        """The paper's table quotes ~3.4% size overhead."""
        geometry = CacheGeometry(8 * 1024, 16)
        fraction = exclusion_overhead_bits(geometry) / direct_mapped_bits(geometry)
        assert 0.02 < fraction < 0.05


class TestEfficiencyRows:
    def test_efficiency_ratio(self):
        row = EfficiencyRow("x", delta_size_percent=4.0, delta_miss_percent=20.0)
        assert row.efficiency == pytest.approx(5.0)

    def test_zero_size_growth(self):
        row = EfficiencyRow("x", delta_size_percent=0.0, delta_miss_percent=10.0)
        assert math.isinf(row.efficiency)

    def test_exclusion_efficiency_row(self):
        geometry = CacheGeometry(8 * 1024, 16)
        row = exclusion_efficiency(geometry, baseline_miss_rate=0.10,
                                   exclusion_miss_rate=0.07)
        assert row.delta_miss_percent == pytest.approx(30.0)
        assert 2.0 < row.delta_size_percent < 5.0
        assert row.label == "8KB DE"

    def test_doubling_efficiency_row(self):
        geometry = CacheGeometry(8 * 1024, 16)
        row = doubling_efficiency(geometry, baseline_miss_rate=0.10,
                                  doubled_miss_rate=0.06)
        assert row.delta_miss_percent == pytest.approx(40.0)
        assert 95.0 < row.delta_size_percent < 100.0
        assert row.label == "16KB DM"

    def test_paper_shape_de_more_efficient(self):
        """With paper-like numbers, DE efficiency dwarfs doubling."""
        geometry = CacheGeometry(8 * 1024, 16)
        de = exclusion_efficiency(geometry, 0.10, 0.079)  # 21% reduction
        double = doubling_efficiency(geometry, 0.10, 0.059)  # 41% reduction
        assert de.efficiency > 10 * double.efficiency
