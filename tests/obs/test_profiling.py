"""Tests for repro.obs.profiling — opt-in sections and cProfile reports."""

import pytest

from repro.obs import profiling
from repro.obs.profiling import PROFILE_FILENAME, Profiler


@pytest.fixture
def installed():
    profiler = profiling.install_profiler(Profiler(cprofile=False))
    yield profiler
    profiling.uninstall_profiler()


class TestProfiler:
    def test_sections_accumulate_count_and_seconds(self):
        profiler = Profiler(cprofile=False)
        for _ in range(3):
            with profiler.section("trace_gen"):
                pass
        totals = profiler.sections()["trace_gen"]
        assert totals["count"] == 3
        assert totals["seconds"] >= 0.0

    def test_nested_sections_do_not_double_enable_cprofile(self):
        profiler = Profiler()  # cProfile on: enabling twice would raise
        with profiler.section("outer"):
            with profiler.section("inner"):
                sum(range(100))
        assert set(profiler.sections()) == {"outer", "inner"}

    def test_report_lists_sections_and_hot_functions(self):
        profiler = Profiler()
        with profiler.section("kernel:DynamicExclusionCache"):
            sum(range(1000))
        report = profiler.report(top=5)
        assert "kernel:DynamicExclusionCache" in report
        assert "x1" in report
        assert "cumulative" in report

    def test_report_without_sections(self):
        assert "(no sections recorded)" in Profiler(cprofile=False).report()

    def test_report_without_cprofile_has_no_function_table(self):
        profiler = Profiler(cprofile=False)
        with profiler.section("x"):
            pass
        assert "cumulative" not in profiler.report()

    def test_write_drops_profile_txt(self, tmp_path):
        profiler = Profiler(cprofile=False)
        with profiler.section("x"):
            pass
        path = profiler.write(tmp_path / "run")
        assert path == tmp_path / "run" / PROFILE_FILENAME
        assert "x" in path.read_text()


class TestModuleLevelSection:
    def test_noop_without_installed_profiler(self):
        assert profiling.current_profiler() is None
        with profiling.section("kernel:X"):
            pass  # must not raise or record anywhere

    def test_records_on_installed_profiler(self, installed):
        with profiling.section("kernel:X"):
            pass
        assert installed.sections()["kernel:X"]["count"] == 1

    def test_uninstall_returns_the_profiler(self):
        profiler = profiling.install_profiler(Profiler(cprofile=False))
        assert profiling.uninstall_profiler() is profiler
        assert profiling.current_profiler() is None
