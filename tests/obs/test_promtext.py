"""Tests for repro.obs.promtext — Prometheus text exposition."""

import math

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.promtext import (
    PROMETHEUS_CONTENT_TYPE,
    escape_label_value,
    parse_prometheus,
    render_prometheus,
    sanitize_name,
)


def _samples_by_name(text):
    grouped = {}
    for sample in parse_prometheus(text):
        grouped.setdefault(sample.name, []).append(sample)
    return grouped


class TestRender:
    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""
        assert parse_prometheus("") == []

    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("fsm.sticky_saves", 12, benchmark="gcc", engine="fast")
        registry.gauge("sweep.workers", 4)
        text = render_prometheus(registry)
        assert "# TYPE fsm_sticky_saves counter" in text
        assert "# TYPE sweep_workers gauge" in text
        samples = _samples_by_name(text)
        (counter,) = samples["fsm_sticky_saves"]
        assert counter.value == 12
        assert counter.labels == {"benchmark": "gcc", "engine": "fast"}
        (gauge,) = samples["sweep_workers"]
        assert gauge.value == 4

    def test_dotted_names_sanitised(self):
        assert sanitize_name("serve.request.seconds") == "serve_request_seconds"
        assert sanitize_name("9lives") == "_9lives"

    def test_label_escaping_round_trips(self):
        registry = MetricsRegistry()
        nasty = 'back\\slash "quoted"\nnewline'
        registry.counter("events", 1, detail=nasty)
        text = render_prometheus(registry)
        (sample,) = parse_prometheus(text)
        assert sample.labels["detail"] == nasty

    def test_escape_label_value_rules(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_histogram_buckets_cumulative_with_inf(self):
        registry = MetricsRegistry()
        for value in (0.5, 1.5, 99.0):
            registry.histogram("cell.seconds", value, bounds=(1.0, 2.0))
        text = render_prometheus(registry)
        samples = _samples_by_name(text)
        buckets = {s.labels["le"]: s.value for s in samples["cell_seconds_bucket"]}
        assert buckets["1"] == 1
        assert buckets["2"] == 2
        assert buckets["+Inf"] == 3
        (count,) = samples["cell_seconds_count"]
        assert count.value == 3
        (total,) = samples["cell_seconds_sum"]
        assert total.value == pytest.approx(101.0)
        # +Inf bucket always equals _count.
        assert buckets["+Inf"] == count.value

    def test_histogram_bucket_counts_monotone(self):
        registry = MetricsRegistry()
        for value in (0.0005, 0.003, 0.02, 0.2, 7.0, 400.0):
            registry.histogram("latency", value)
        samples = _samples_by_name(render_prometheus(registry))
        values = [s.value for s in samples["latency_bucket"]]
        assert values == sorted(values)

    def test_round_trip_through_export_list(self):
        registry = MetricsRegistry()
        registry.counter("a.b", 3, k="v")
        registry.histogram("h", 0.4)
        from_registry = render_prometheus(registry)
        from_export = render_prometheus(registry.export())
        assert from_registry == from_export


class TestParse:
    def test_inf_and_nan_values(self):
        samples = parse_prometheus('x{le="+Inf"} +Inf\ny -Inf\nz NaN\n')
        assert samples[0].value == math.inf
        assert samples[0].labels == {"le": "+Inf"}
        assert samples[1].value == -math.inf
        assert math.isnan(samples[2].value)

    def test_comments_and_blanks_skipped(self):
        samples = parse_prometheus("# TYPE x counter\n\nx 1\n")
        assert len(samples) == 1

    @pytest.mark.parametrize(
        "line",
        [
            "no_value",
            '{"just": "labels"} 1',
            'name{unterminated="v 1',
            'name{k=unquoted} 1',
            "name{k=\"bad\\escape\"} 1",
            "name value_not_a_number",
        ],
    )
    def test_malformed_lines_raise(self, line):
        with pytest.raises(ValueError):
            parse_prometheus(line)

    def test_content_type_names_the_exposition_version(self):
        assert "version=0.0.4" in PROMETHEUS_CONTENT_TYPE
        assert PROMETHEUS_CONTENT_TYPE.startswith("text/plain")
