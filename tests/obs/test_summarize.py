"""Tests for repro.obs.summarize — rendering trace directories."""

import json

import pytest

from repro.obs.manifest import build_manifest, write_manifest
from repro.obs.metrics import METRICS_FILENAME, MetricsRegistry
from repro.obs.summarize import find_runs, summarize_directory, summarize_run
from repro.obs.tracing import Tracer


def _make_run(directory, spec="fig04", with_manifest=True):
    """A small but realistic run: experiment -> sweep -> cells."""
    with Tracer(directory) as tracer:
        with tracer.span("experiment", spec=spec):
            with tracer.span("sweep", engine="fast"):
                for label in ("dm@1024", "dm@2048"):
                    with tracer.span("cell", label=label, engine="fast"):
                        pass
    if with_manifest:
        manifest = build_manifest(
            spec_id=spec,
            spec_fingerprint="abc123",
            engine="fast",
            workers=None,
            wall_seconds=1.0,
            cpu_seconds=0.9,
            started_at=1700000000.0,
        )
        write_manifest(directory, manifest)
    return directory


class TestSummarizeRun:
    def test_renders_manifest_tree_and_cells(self, tmp_path):
        _make_run(tmp_path)
        text = summarize_run(tmp_path)
        assert "spec=fig04" in text
        assert "engine=fast" in text
        assert "workers=auto" in text
        assert "span tree (4 spans" in text
        assert "experiment" in text
        assert "sweep" in text
        assert "x2" in text  # the two cells merge into one tree line
        assert "top 2 slowest cells" in text
        assert "cell(engine=fast, label=dm@1024)" in text

    def test_without_manifest(self, tmp_path):
        _make_run(tmp_path, with_manifest=False)
        text = summarize_run(tmp_path)
        assert "(no run_manifest.json)" in text
        assert "span tree" in text

    def test_empty_trace_degrades_with_note(self, tmp_path):
        (tmp_path / "trace.jsonl").write_text("")
        assert "(no trace captured: trace.jsonl is empty)" in summarize_run(tmp_path)

    def test_missing_trace_with_manifest_degrades(self, tmp_path):
        manifest = build_manifest(
            spec_id="fig04",
            spec_fingerprint="abc123",
            engine="fast",
            workers=2,
            wall_seconds=1.0,
            cpu_seconds=0.9,
            started_at=1700000000.0,
        )
        write_manifest(tmp_path, manifest)
        text = summarize_run(tmp_path)
        assert "spec=fig04" in text
        assert "(no trace captured: trace.jsonl is missing)" in text

    def test_traceless_run_renders_metrics_snapshot(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("fsm.sticky_saves", 7, benchmark="gcc")
        registry.histogram("cell.seconds", 0.25)
        (tmp_path / METRICS_FILENAME).write_text(
            json.dumps(registry.export()), encoding="utf-8"
        )
        text = summarize_run(tmp_path)
        assert "no trace captured" in text
        assert "metrics (2 series)" in text
        assert "fsm.sticky_saves{benchmark=gcc}" in text
        assert "7" in text
        assert "count=1" in text

    def test_top_limits_the_cell_list(self, tmp_path):
        _make_run(tmp_path)
        text = summarize_run(tmp_path, top=1)
        assert "top 1 slowest cells" in text


class TestFindRuns:
    def test_directory_itself(self, tmp_path):
        _make_run(tmp_path)
        assert find_runs(tmp_path) == [tmp_path]

    def test_one_level_of_children(self, tmp_path):
        _make_run(tmp_path / "fig04", spec="fig04")
        _make_run(tmp_path / "fig05", spec="fig05")
        (tmp_path / "not-a-run").mkdir()
        assert find_runs(tmp_path) == [tmp_path / "fig04", tmp_path / "fig05"]


class TestSummarizeDirectory:
    def test_summarises_every_run(self, tmp_path):
        _make_run(tmp_path / "fig04", spec="fig04")
        _make_run(tmp_path / "fig05", spec="fig05")
        text = summarize_directory(tmp_path)
        assert "spec=fig04" in text
        assert "spec=fig05" in text

    def test_manifest_only_child_is_not_omitted(self, tmp_path):
        _make_run(tmp_path / "fig04", spec="fig04")
        manifest = build_manifest(
            spec_id="fig05",
            spec_fingerprint="def456",
            engine="fast",
            workers=None,
            wall_seconds=2.0,
            cpu_seconds=1.5,
            started_at=1700000000.0,
        )
        write_manifest(tmp_path / "fig05", manifest)
        text = summarize_directory(tmp_path)
        assert "spec=fig04" in text
        assert "spec=fig05" in text
        assert "no trace captured" in text

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no such trace directory"):
            summarize_directory(tmp_path / "absent")

    def test_directory_without_runs_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="trace.jsonl"):
            summarize_directory(tmp_path)
