"""Tests for repro.obs.tracing — spans, the tracer, and the JSONL file."""

import json
import threading

import pytest

from repro.obs import tracing
from repro.obs.tracing import Span, Tracer, iter_jsonl, read_spans


@pytest.fixture
def installed(tmp_path):
    """A tracer installed process-wide, cleaned up afterwards."""
    tracer = tracing.install_tracer(Tracer(tmp_path))
    yield tracer
    tracing.uninstall_tracer()
    tracer.close()


class TestSpanSerialisation:
    def test_round_trip_through_json(self):
        span = Span(
            name="cell",
            span_id=7,
            parent_id=3,
            start=1.5,
            duration=0.25,
            attrs={"label": "dm@1024", "engine": "fast"},
        )
        line = json.dumps(span.to_dict(), sort_keys=True)
        restored = Span.from_dict(json.loads(line))
        assert restored == span

    def test_root_span_has_no_parent(self):
        span = Span(name="experiment", span_id=1, parent_id=None, start=0.0, duration=1.0)
        entry = span.to_dict()
        assert entry["parent"] is None
        assert Span.from_dict(entry) == span

    def test_empty_attrs_omitted_from_dict(self):
        span = Span(name="x", span_id=1, parent_id=None, start=0.0, duration=0.0)
        assert "attrs" not in span.to_dict()

    @pytest.mark.parametrize(
        "entry",
        [
            {"kind": "journal-entry", "version": 1},  # wrong kind
            {"kind": "span", "version": 99, "name": "x", "id": 1},  # future version
            {"kind": "span", "version": 1, "name": 3, "id": 1,
             "start": 0.0, "duration": 0.0},  # name not a string
            {"kind": "span", "version": 1, "name": "x", "id": "one",
             "start": 0.0, "duration": 0.0},  # id not an int
            {"kind": "span", "version": 1, "name": "x", "id": 1,
             "parent": "root", "start": 0.0, "duration": 0.0},  # bad parent
            {"kind": "span", "version": 1, "name": "x", "id": 1,
             "start": "soon", "duration": 0.0},  # bad start
        ],
    )
    def test_unusable_entries_rejected(self, entry):
        assert Span.from_dict(entry) is None


class TestTracer:
    def test_spans_nest_via_parent_ids(self):
        tracer = Tracer()
        with tracer.span("experiment") as outer:
            with tracer.span("sweep") as mid:
                with tracer.span("cell") as inner:
                    pass
        assert outer.parent_id is None
        assert mid.parent_id == outer.span_id
        assert inner.parent_id == mid.span_id
        assert [span.name for span in tracer.spans] == ["cell", "sweep", "experiment"]

    def test_attrs_stamped_before_exit_are_kept(self):
        tracer = Tracer()
        with tracer.span("cell", label="dm@1024") as span:
            span.attrs["error"] = "boom"
        assert tracer.spans[0].attrs == {"label": "dm@1024", "error": "boom"}

    def test_durations_are_non_negative_and_nested(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans
        assert 0.0 <= inner.duration <= outer.duration

    def test_record_backdates_a_measured_span(self):
        tracer = Tracer()
        with tracer.span("sweep"):
            span = tracer.record("cell", 1.5, pooled=True)
        assert span.duration == 1.5
        assert span.attrs == {"pooled": True}
        assert span.parent_id == tracer.spans[-1].span_id or span.parent_id is not None
        assert span.start >= 0.0

    def test_record_clamps_negative_seconds(self):
        tracer = Tracer()
        span = tracer.record("cell", -3.0)
        assert span.duration == 0.0

    def test_aggregate_stays_exact_past_the_keep_limit(self):
        tracer = Tracer(keep=2)
        for _ in range(5):
            tracer.record("cell", 0.5)
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3
        totals = tracer.aggregate()["cell"]
        assert totals["count"] == 5
        assert totals["seconds"] == pytest.approx(2.5)

    def test_no_directory_means_no_file(self, tmp_path):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.close()
        assert tracer.path is None

    def test_span_ids_are_unique_across_threads(self):
        tracer = Tracer()

        def work():
            for _ in range(50):
                with tracer.span("cell"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        ids = [span.span_id for span in tracer.spans]
        assert len(ids) == len(set(ids)) == 200


class TestTraceFile:
    def test_spans_persist_and_reload(self, tmp_path):
        with Tracer(tmp_path) as tracer:
            with tracer.span("experiment", spec="fig04"):
                with tracer.span("cell", label="dm@1024"):
                    pass
        spans = read_spans(tmp_path / tracing.TRACE_FILENAME)
        assert [span.name for span in spans] == ["cell", "experiment"]
        assert spans[1].attrs == {"spec": "fig04"}
        assert spans[0].parent_id == spans[1].span_id

    def test_torn_tail_is_skipped(self, tmp_path):
        with Tracer(tmp_path) as tracer:
            with tracer.span("experiment"):
                with tracer.span("cell"):
                    pass
        path = tmp_path / tracing.TRACE_FILENAME
        # Simulate a crash mid-write: a torn final line.
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"kind": "span", "version": 1, "name": "tor')
        spans = read_spans(path)
        assert [span.name for span in spans] == ["cell", "experiment"]

    def test_iter_jsonl_skips_blank_torn_and_non_object_lines(self, tmp_path):
        path = tmp_path / "data.jsonl"
        path.write_text('{"a": 1}\n\n[1, 2]\n"text"\n{"b": 2}\n{"torn": ')
        assert list(iter_jsonl(path)) == [{"a": 1}, {"b": 2}]

    def test_iter_jsonl_missing_file_yields_nothing(self, tmp_path):
        assert list(iter_jsonl(tmp_path / "absent.jsonl")) == []


class TestModuleLevelHelpers:
    def test_noop_without_installed_tracer(self):
        assert tracing.current_tracer() is None
        with tracing.span("cell") as span:
            assert span is None
        assert tracing.record("cell", 1.0) is None

    def test_write_to_installed_tracer(self, installed):
        with tracing.span("experiment", spec="fig04") as span:
            assert span is not None
            tracing.record("cell", 0.25, pooled=True)
        totals = installed.aggregate()
        assert set(totals) == {"experiment", "cell"}
        assert totals["cell"] == {"count": 1, "seconds": 0.25}
        assert totals["experiment"]["count"] == 1

    def test_uninstall_returns_the_tracer(self):
        tracer = tracing.install_tracer(Tracer())
        assert tracing.current_tracer() is tracer
        assert tracing.uninstall_tracer() is tracer
        assert tracing.current_tracer() is None
