"""Tests for repro.obs.manifest — the per-run provenance record."""

import json

from repro.obs.manifest import (
    MANIFEST_FILENAME,
    MANIFEST_VERSION,
    build_manifest,
    environment_snapshot,
    git_sha,
    read_manifest,
    write_manifest,
)


def _manifest(**overrides):
    fields = dict(
        spec_id="fig05",
        spec_fingerprint="abc123",
        engine="fast",
        workers=4,
        wall_seconds=1.23456789,
        cpu_seconds=2.5,
        started_at=1700000000.123,
    )
    fields.update(overrides)
    return build_manifest(**fields)


class TestBuildManifest:
    def test_core_fields(self):
        manifest = _manifest()
        assert manifest["kind"] == "run-manifest"
        assert manifest["version"] == MANIFEST_VERSION
        assert manifest["spec"] == "fig05"
        assert manifest["spec_fingerprint"] == "abc123"
        assert manifest["engine"] == "fast"
        assert manifest["workers"] == 4
        assert manifest["wall_seconds"] == 1.234568  # rounded to 6dp
        assert manifest["cpu_seconds"] == 2.5

    def test_extra_fields_merge(self):
        manifest = _manifest(extra={"cells": 270})
        assert manifest["cells"] == 270

    def test_is_json_safe(self):
        json.dumps(_manifest())  # must not raise

    def test_environment_snapshot_captures_repro_vars(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SCALE", "0.05")
        monkeypatch.setenv("REPRO_PROFILE", "1")
        snapshot = environment_snapshot()
        assert snapshot["repro"]["REPRO_TRACE_SCALE"] == "0.05"
        assert snapshot["repro"]["REPRO_PROFILE"] == "1"
        assert snapshot["python"]
        assert snapshot["platform"]


class TestGitSha:
    def test_inside_a_checkout(self):
        sha = git_sha()
        assert sha is not None
        assert len(sha) == 40
        int(sha, 16)  # hex

    def test_outside_a_checkout(self, tmp_path):
        assert git_sha(cwd=tmp_path) is None


class TestWriteRead:
    def test_round_trip(self, tmp_path):
        manifest = _manifest()
        path = write_manifest(tmp_path / "run", manifest)
        assert path == tmp_path / "run" / MANIFEST_FILENAME
        assert read_manifest(tmp_path / "run") == manifest

    def test_no_temp_file_left_behind(self, tmp_path):
        write_manifest(tmp_path, _manifest())
        assert [p.name for p in tmp_path.iterdir()] == [MANIFEST_FILENAME]

    def test_absent_reads_none(self, tmp_path):
        assert read_manifest(tmp_path) is None

    def test_corrupt_reads_none(self, tmp_path):
        (tmp_path / MANIFEST_FILENAME).write_text('{"torn": ')
        assert read_manifest(tmp_path) is None

    def test_non_object_reads_none(self, tmp_path):
        (tmp_path / MANIFEST_FILENAME).write_text("[1, 2, 3]\n")
        assert read_manifest(tmp_path) is None


class TestConcurrentWriters:
    def test_parallel_writes_never_tear_the_manifest(self, tmp_path):
        """Concurrent write_manifest calls into one directory each use a
        unique temp name, so the surviving manifest is always one
        writer's complete output — never a mix, never a torn file."""
        import threading

        manifests = [_manifest(extra={"writer": i}) for i in range(8)]
        threads = [
            threading.Thread(target=write_manifest, args=(tmp_path, manifest))
            for manifest in manifests
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        final = read_manifest(tmp_path)
        assert final is not None  # parseable, i.e. not torn
        assert any(final == manifest for manifest in manifests)
        assert [p.name for p in tmp_path.iterdir()] == [MANIFEST_FILENAME]

    def test_repeated_writes_last_wins(self, tmp_path):
        for i in range(3):
            write_manifest(tmp_path, _manifest(extra={"round": i}))
        assert read_manifest(tmp_path)["round"] == 2
