"""Observability must not perturb the science.

Two contracts pinned here:

* **neutrality** — installing the tracer, metrics registry, and
  profiler changes zero :class:`CacheStats` outputs on either engine
  (the parity goldens stay byte-identical with instrumentation on);
* **mechanism parity** — the FSM event counters (``fsm.sticky_saves``,
  ``fsm.hit_last_loads``, ``fsm.exclusion_flips``) published by the
  reference cache and by the fast kernels agree exactly per benchmark,
  so the kernels are checked mechanism-for-mechanism, not just
  miss-rate-for-miss-rate.
"""

import pytest

from repro import obs
from repro.caches.geometry import CacheGeometry
from repro.core.exclusion_cache import DynamicExclusionCache
from repro.obs.metrics import MetricsRegistry
from repro.perf.engine import simulate
from repro.workloads.registry import trace_by_kind

REFS = 20_000
FSM_COUNTERS = ("sticky_saves", "hit_last_loads", "exclusion_flips")


@pytest.fixture(scope="module")
def gcc_trace():
    return trace_by_kind("gcc", "instruction", max_refs=REFS)


def _simulate(trace, engine):
    cache = DynamicExclusionCache(CacheGeometry(1024, 4))
    return simulate(cache, trace, engine=engine)


def _fsm_counts(registry, trace, engine):
    labels = {"benchmark": trace.name, "engine": engine}
    return {
        name: registry.value(f"fsm.{name}", **labels) for name in FSM_COUNTERS
    }


class TestInstrumentationNeutrality:
    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_stats_identical_with_and_without_instrumentation(
        self, engine, gcc_trace, tmp_path
    ):
        plain = _simulate(gcc_trace, engine)
        tracer = obs.install_tracer(obs.Tracer(tmp_path / engine))
        obs.install_registry(MetricsRegistry())
        obs.install_profiler(obs.Profiler())
        try:
            instrumented = _simulate(gcc_trace, engine)
        finally:
            obs.uninstall_profiler()
            obs.uninstall_registry()
            obs.uninstall_tracer()
            tracer.close()
        assert instrumented == plain

    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_simulate_span_and_counters_are_emitted(
        self, engine, gcc_trace, tmp_path
    ):
        tracer = obs.install_tracer(obs.Tracer(tmp_path / engine))
        registry = obs.install_registry(MetricsRegistry())
        try:
            _simulate(gcc_trace, engine)
        finally:
            obs.uninstall_registry()
            obs.uninstall_tracer()
            tracer.close()
        totals = tracer.aggregate()
        assert totals["simulate"]["count"] == 1
        counts = _fsm_counts(registry, gcc_trace, engine)
        assert all(value is not None for value in counts.values())


class TestFsmCounterParity:
    def test_reference_and_fast_agree_exactly(self, gcc_trace):
        counts = {}
        stats = {}
        for engine in ("reference", "fast"):
            registry = obs.install_registry(MetricsRegistry())
            try:
                stats[engine] = _simulate(gcc_trace, engine)
            finally:
                obs.uninstall_registry()
            counts[engine] = _fsm_counts(registry, gcc_trace, engine)
        # Non-trivial workload: the mechanism actually fires.
        assert counts["reference"]["sticky_saves"] > 0
        assert counts["reference"]["hit_last_loads"] > 0
        assert counts["reference"]["exclusion_flips"] > 0
        assert counts["reference"] == counts["fast"]
        assert stats["reference"] == stats["fast"]

    def test_sticky_saves_equal_stats_bypasses(self, gcc_trace):
        registry = obs.install_registry(MetricsRegistry())
        try:
            stats = _simulate(gcc_trace, "reference")
        finally:
            obs.uninstall_registry()
        counts = _fsm_counts(registry, gcc_trace, "reference")
        assert counts["sticky_saves"] == stats.bypasses

    def test_events_accumulate_on_the_cache_object(self, gcc_trace):
        cache = DynamicExclusionCache(CacheGeometry(1024, 4))
        stats = simulate(cache, gcc_trace, engine="reference")
        events = cache.events
        assert events.sticky_saves == stats.bypasses
        assert events.as_dict() == {
            "sticky_saves": events.sticky_saves,
            "hit_last_loads": events.hit_last_loads,
            "exclusion_flips": events.exclusion_flips,
        }

    def test_access_path_matches_simulate_fast_path(self, gcc_trace):
        """The per-reference ``access`` loop and the stats-only
        ``simulate`` loop count the same FSM events."""
        fast_path = DynamicExclusionCache(CacheGeometry(1024, 4))
        fast_path.simulate(gcc_trace)
        stepped = DynamicExclusionCache(CacheGeometry(1024, 4))
        for ref in gcc_trace:
            stepped.access(ref.addr, ref.kind)
        assert stepped.events == fast_path.events
        assert stepped.stats == fast_path.stats
