"""Tests for repro.obs.logs — the REPRO_LOG_LEVEL-gated stderr logger."""

import logging

import pytest

from repro.obs import logs
from repro.obs.logs import _CurrentStderrHandler, configure_logging, get_logger


@pytest.fixture(autouse=True)
def restore_logger_state():
    """Leave the shared ``repro`` logger as we found it."""
    logger = logging.getLogger(logs.ROOT_LOGGER)
    state = (list(logger.handlers), logger.level, logger.propagate)
    yield
    logger.handlers, logger.level, logger.propagate = state[0], state[1], state[2]


class TestConfigureLogging:
    def test_idempotent_handler_installation(self):
        logger = configure_logging("info")
        configure_logging("info")
        handlers = [
            h for h in logger.handlers if isinstance(h, _CurrentStderrHandler)
        ]
        assert len(handlers) == 1

    def test_level_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "error")
        assert configure_logging().level == logging.ERROR

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging("loud")

    def test_chatter_goes_to_current_stderr(self, capsys):
        configure_logging("info")
        get_logger("experiments").info("[fig04 done in 1.0s]")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "[fig04 done in 1.0s]" in captured.err

    def test_level_filters(self, capsys):
        configure_logging("warning")
        get_logger("experiments").info("hidden chatter")
        assert "hidden chatter" not in capsys.readouterr().err

    def test_quiet_silences_even_errors(self, capsys):
        configure_logging("quiet")
        get_logger("experiments").error("still hidden")
        assert capsys.readouterr().err == ""


class TestGetLogger:
    def test_nests_under_the_repro_family(self):
        assert get_logger("experiments").name == "repro.experiments"
        assert get_logger().name == "repro"

    def test_level_names_match_env_module(self):
        from repro import env

        assert logs.LOG_LEVELS == env.LOG_LEVELS
