"""Tests for repro.obs.distributed — cross-process span/metric shipping."""

import os

import pytest

from repro.obs import distributed, metrics as obs_metrics, tracing as obs_tracing
from repro.obs.distributed import (
    DROPPED_COUNTER,
    WorkerCapture,
    merge_cell_payload,
    propagation_context,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Span, Tracer


@pytest.fixture(autouse=True)
def _clean_process_state():
    yield
    obs_tracing.uninstall_tracer()
    obs_metrics.uninstall_registry()


class TestPropagationContext:
    def test_none_without_a_tracer(self):
        obs_tracing.uninstall_tracer()
        assert propagation_context() is None

    def test_carries_trace_id_and_current_span(self):
        tracer = obs_tracing.install_tracer(Tracer())
        with tracer.span("sweep") as sweep:
            ctx = propagation_context()
            assert ctx["version"] == distributed.OBS_WIRE_VERSION
            assert ctx["trace_id"] == tracer.trace_id
            assert ctx["parent_span_id"] == sweep.span_id
        assert propagation_context()["parent_span_id"] is None


class TestWorkerCapture:
    def test_captures_spans_and_metrics(self):
        with WorkerCapture({"trace_id": "abc123"}) as capture:
            with obs_tracing.span("simulate", engine="fast"):
                obs_metrics.counter("fsm.sticky_saves", 5, benchmark="gcc")
        payload = capture.payload()
        assert payload["trace_id"] == "abc123"
        assert payload["pid"] == os.getpid()
        assert payload["dropped"] == 0
        assert [entry["name"] for entry in payload["spans"]] == ["simulate"]
        (series,) = payload["metrics"]
        assert series["name"] == "fsm.sticky_saves"
        assert series["value"] == 5

    def test_restores_previous_tracer_and_registry(self):
        outer_tracer = obs_tracing.install_tracer(Tracer())
        outer_registry = obs_metrics.install_registry(MetricsRegistry())
        with WorkerCapture():
            assert obs_tracing.current_tracer() is not outer_tracer
            assert obs_metrics.current_registry() is not outer_registry
        assert obs_tracing.current_tracer() is outer_tracer
        assert obs_metrics.current_registry() is outer_registry

    def test_span_ship_limit_counts_drops(self):
        with WorkerCapture(max_spans=2) as capture:
            for index in range(5):
                obs_tracing.record("step", 0.001, index=index)
        payload = capture.payload()
        assert len(payload["spans"]) == 2
        assert payload["dropped"] == 3


class TestMergeCellPayload:
    def _payload(self):
        with WorkerCapture({"trace_id": "t1"}) as capture:
            with obs_tracing.span("trace_gen"):
                pass
            with obs_tracing.span("simulate"):
                with obs_tracing.span("kernel"):
                    pass
            obs_metrics.counter("fsm.sticky_saves", 3, benchmark="gcc")
        return capture.payload()

    def test_spans_reparented_rebased_and_attributed(self):
        payload = self._payload()
        tracer = Tracer()
        registry = MetricsRegistry()
        cell = Span(name="cell", span_id=tracer.allocate_span_id(),
                    parent_id=None, start=10.0, duration=1.0)
        tracer.emit(cell)
        adopted = merge_cell_payload(
            payload, cell, worker="local#0", tracer=tracer, registry=registry
        )
        assert adopted == 3
        by_name = {span.name: span for span in tracer.spans}
        # Worker-root spans hang off the cell span; nesting survives.
        assert by_name["trace_gen"].parent_id == cell.span_id
        assert by_name["simulate"].parent_id == cell.span_id
        assert by_name["kernel"].parent_id == by_name["simulate"].span_id
        # Starts are re-based onto the cell span's clock.
        for name in ("trace_gen", "simulate", "kernel"):
            assert by_name[name].start >= cell.start
            assert by_name[name].attrs["worker"] == "local#0"
            assert by_name[name].attrs["pid"] == os.getpid()
        # Re-identified ids never collide with parent allocations.
        ids = [span.span_id for span in tracer.spans]
        assert len(ids) == len(set(ids))

    def test_metrics_merged_with_worker_label(self):
        payload = self._payload()
        registry = MetricsRegistry()
        merge_cell_payload(payload, None, worker="local#1",
                           tracer=None, registry=registry)
        assert registry.value(
            "fsm.sticky_saves", benchmark="gcc", worker="local#1"
        ) == 3
        assert registry.total("fsm.sticky_saves", benchmark="gcc") == 3

    def test_dropped_spans_surface_as_counter(self):
        with WorkerCapture(max_spans=1):
            obs_tracing.record("a", 0.001)
            obs_tracing.record("b", 0.001)
        capture_payload = {"pid": 4242, "spans": [], "dropped": 1, "metrics": []}
        registry = MetricsRegistry()
        merge_cell_payload(capture_payload, None, tracer=None, registry=registry)
        assert registry.value(DROPPED_COUNTER, worker="pid-4242") == 1

    def test_garbage_payload_is_harmless(self):
        registry = MetricsRegistry()
        tracer = Tracer()
        assert merge_cell_payload("nope", None, tracer=tracer, registry=registry) == 0
        assert merge_cell_payload(
            {"spans": "not-a-list", "metrics": None}, None,
            tracer=tracer, registry=registry,
        ) == 0
        assert tracer.spans == []


class TestRegistryMerge:
    def test_counters_add_and_gauges_overwrite(self):
        parent = MetricsRegistry()
        parent.counter("hits", 10)
        worker = MetricsRegistry()
        worker.counter("hits", 5)
        worker.gauge("depth", 3)
        merged = parent.merge(worker.export())
        assert merged == 2
        # No extra labels: the series land on the same key and add.
        assert parent.value("hits") == 15
        assert parent.value("depth") == 3

    def test_extra_labels_keep_workers_distinct(self):
        parent = MetricsRegistry()
        for worker_id in ("w0", "w1"):
            child = MetricsRegistry()
            child.counter("cells", 2)
            parent.merge(child.export(), worker=worker_id)
        assert parent.value("cells", worker="w0") == 2
        assert parent.total("cells") == 4
        assert parent.value("cells") is None  # unlabeled series never created

    def test_histograms_merge_matching_bounds(self):
        parent = MetricsRegistry()
        parent.histogram("cell.seconds", 0.5, bounds=(1.0, 2.0))
        child = MetricsRegistry()
        child.histogram("cell.seconds", 1.5, bounds=(1.0, 2.0))
        child.histogram("cell.seconds", 5.0, bounds=(1.0, 2.0))
        parent.merge(child.export())
        series = parent.get("cell.seconds")
        assert series.count == 3
        assert series.buckets == [1, 1, 1]
        assert series.min == 0.5
        assert series.max == 5.0

    def test_histograms_rebucket_on_mismatched_bounds(self):
        parent = MetricsRegistry()
        parent.histogram("t", 0.5, bounds=(1.0, 10.0))
        child = MetricsRegistry()
        child.histogram("t", 3.0, bounds=(5.0,))
        child.histogram("t", 100.0, bounds=(5.0,))
        parent.merge(child.export())
        series = parent.get("t")
        assert series.count == 3
        assert series.sum == pytest.approx(103.5)
        # The 3.0 observation lands at its old upper bound (5.0 <= 10.0);
        # the 100.0 observation was in the child's +inf bucket and stays +inf.
        assert series.buckets == [1, 1, 1]

    def test_malformed_entries_counted_not_fatal(self):
        parent = MetricsRegistry()
        merged = parent.merge([
            "not-a-dict",
            {"name": "x"},  # no type
            {"name": "y", "type": "mystery", "value": 1},
            {"name": "ok", "type": "counter", "value": 2},
        ])
        assert merged == 1
        assert parent.value("ok") == 2
        assert parent.value("obs.metrics.merge_skipped") == 3
