"""Tests for repro.obs.metrics — the typed, bounded metrics registry."""

import json
import threading

import pytest

from repro.obs import metrics
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    OVERFLOW_SERIES,
)


@pytest.fixture
def registry():
    """A fresh registry installed as the module-level target."""
    registry = metrics.install_registry(MetricsRegistry())
    yield registry
    metrics.uninstall_registry()


class TestCounter:
    def test_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Counter().inc(-1)


class TestGauge:
    def test_keeps_last_value(self):
        gauge = Gauge()
        gauge.set(4)
        gauge.set(2)
        assert gauge.value == 2.0


class TestHistogram:
    def test_streaming_summary(self):
        histogram = Histogram(bounds=(1.0, 10.0))
        for value in (0.5, 2.0, 50.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(52.5)
        assert histogram.min == 0.5
        assert histogram.max == 50.0
        assert histogram.mean == pytest.approx(17.5)
        assert histogram.buckets == [1, 1, 1]  # <=1, <=10, +inf

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram().mean == 0.0

    def test_to_dict_is_json_safe(self):
        histogram = Histogram(bounds=(1.0,))
        histogram.observe(0.5)
        entry = json.loads(json.dumps(histogram.to_dict()))
        assert entry["count"] == 1
        assert entry["buckets"] == [1, 0]


class TestRegistry:
    def test_labels_key_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("fsm.sticky_saves", 3, benchmark="gcc", engine="fast")
        registry.counter("fsm.sticky_saves", 5, benchmark="li", engine="fast")
        assert registry.value("fsm.sticky_saves", benchmark="gcc", engine="fast") == 3
        assert registry.value("fsm.sticky_saves", benchmark="li", engine="fast") == 5

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        registry.counter("x", 1, a=1, b=2)
        registry.counter("x", 1, b=2, a=1)
        assert registry.value("x", a=1, b=2) == 2

    def test_absent_series_reads_none(self):
        registry = MetricsRegistry()
        assert registry.value("nope") is None
        assert registry.get("nope") is None

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("x", 1.0)

    def test_value_on_histogram_raises(self):
        registry = MetricsRegistry()
        registry.histogram("cell.seconds", 0.1)
        with pytest.raises(TypeError, match="use get"):
            registry.value("cell.seconds")
        assert registry.get("cell.seconds").count == 1

    def test_export_is_sorted_and_json_safe(self):
        registry = MetricsRegistry()
        registry.gauge("sweep.workers", 4, engine="fast")
        registry.counter("sweep.runs", engine="fast")
        registry.histogram("cell.seconds", 0.1, engine="fast")
        exported = json.loads(json.dumps(registry.export()))
        assert [entry["name"] for entry in exported] == [
            "cell.seconds",
            "sweep.runs",
            "sweep.workers",
        ]
        assert all(entry["labels"] == {"engine": "fast"} for entry in exported)
        assert [entry["type"] for entry in exported] == [
            "histogram",
            "counter",
            "gauge",
        ]

    def test_overflow_folds_into_one_counter(self):
        registry = MetricsRegistry(max_series=2)
        registry.counter("a")
        registry.counter("b")
        registry.counter("c")  # past the bound
        registry.gauge("d", 9.0)  # past the bound
        registry.histogram("e", 0.5)  # past the bound
        assert registry.overflowed == 3
        assert registry.value(OVERFLOW_SERIES) == 3
        # Existing series keep working at the bound.
        registry.counter("a")
        assert registry.value("a") == 2

    def test_custom_histogram_bounds_apply_at_creation(self):
        registry = MetricsRegistry()
        registry.histogram("serve.request.seconds", 0.0002,
                           bounds=(0.0001, 0.001), route="/spec")
        series = registry.get("serve.request.seconds", route="/spec")
        assert series.bounds == (0.0001, 0.001)
        assert series.buckets == [0, 1, 0]

    def test_existing_series_keeps_its_bounds(self):
        registry = MetricsRegistry()
        registry.histogram("t", 0.5, bounds=(1.0,))
        registry.histogram("t", 0.5, bounds=(9.0, 99.0))  # ignored
        assert registry.get("t").bounds == (1.0,)
        assert registry.get("t").count == 2

    def test_total_sums_label_supersets(self):
        registry = MetricsRegistry()
        registry.counter("fsm.flips", 2, benchmark="gcc", worker="w0")
        registry.counter("fsm.flips", 3, benchmark="gcc", worker="w1")
        registry.counter("fsm.flips", 7, benchmark="li", worker="w0")
        assert registry.total("fsm.flips", benchmark="gcc") == 5
        assert registry.total("fsm.flips") == 12
        assert registry.total("fsm.flips", benchmark="absent") is None

    def test_clear(self):
        registry = MetricsRegistry(max_series=1)
        registry.counter("a")
        registry.counter("b")
        registry.clear()
        assert registry.export() == []
        assert registry.overflowed == 0

    def test_writes_are_thread_safe(self):
        registry = MetricsRegistry()

        def work():
            for _ in range(1000):
                registry.counter("hits")

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.value("hits") == 4000


class TestModuleLevelHelpers:
    def test_helpers_write_to_installed_registry(self, registry):
        metrics.counter("sweep.runs", engine="fast")
        metrics.gauge("sweep.workers", 2, engine="fast")
        metrics.histogram("cell.seconds", 0.25, engine="fast")
        assert registry.value("sweep.runs", engine="fast") == 1
        assert registry.value("sweep.workers", engine="fast") == 2
        assert registry.get("cell.seconds", engine="fast").count == 1

    def test_uninstall_restores_the_default(self):
        scoped = metrics.install_registry(MetricsRegistry())
        assert metrics.current_registry() is scoped
        assert metrics.uninstall_registry() is scoped
        assert metrics.current_registry() is not scoped
        # The default registry is a real registry, not None.
        assert isinstance(metrics.current_registry(), MetricsRegistry)
