"""Property tests on the two-level hierarchy."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.caches.geometry import CacheGeometry
from repro.hierarchy.two_level import Strategy, TwoLevelCache
from repro.trace.trace import Trace

L1 = CacheGeometry(64, 4)
L2 = CacheGeometry(256, 4)

addresses = st.lists(
    st.integers(min_value=0, max_value=255).map(lambda s: s * 4),
    min_size=1,
    max_size=200,
)

strategies = st.sampled_from(list(Strategy))


def itrace(addrs):
    return Trace(addrs, [0] * len(addrs))


@given(addrs=addresses, strategy=strategies)
@settings(max_examples=60, deadline=None)
def test_l2_sees_exactly_the_l1_misses(addrs, strategy):
    hierarchy = TwoLevelCache(L1, L2, strategy=strategy)
    result = hierarchy.simulate(itrace(addrs))
    assert result.l2.accesses == result.l1.misses
    result.l1.check()
    result.l2.check()


@given(addrs=addresses, strategy=strategies)
@settings(max_examples=60, deadline=None)
def test_global_l2_misses_bounded_by_l1_misses(addrs, strategy):
    hierarchy = TwoLevelCache(L1, L2, strategy=strategy)
    result = hierarchy.simulate(itrace(addrs))
    assert result.l2.misses <= result.l1.misses
    assert result.l2_global_miss_rate <= result.l1_miss_rate + 1e-12


@given(addrs=addresses)
@settings(max_examples=60, deadline=None)
def test_exclusion_l1_never_worse_than_plain_l1(addrs):
    """The ideal-store hierarchy's L1 cannot lose to the conventional
    one by more than the FSM's bounded training cost; on these short
    traces we check the global bound misses_DE <= 2 * misses_DM."""
    trace = itrace(addrs)
    plain = TwoLevelCache(L1, L2, strategy="direct-mapped").simulate(trace)
    ideal = TwoLevelCache(L1, L2, strategy="ideal").simulate(trace)
    assert ideal.l1.misses <= 2 * max(1, plain.l1.misses)


@given(addrs=addresses)
@settings(max_examples=60, deadline=None)
def test_assume_hit_at_equal_sizes_equals_direct_mapped(addrs):
    """The degenerate case must hold on arbitrary traces, not just the
    figure workloads (paper Section 5)."""
    trace = itrace(addrs)
    same_size = CacheGeometry(64, 4)
    assume_hit = TwoLevelCache(L1, same_size, strategy="assume-hit").simulate(trace)
    plain = TwoLevelCache(L1, same_size, strategy="direct-mapped").simulate(trace)
    assert assume_hit.l1.misses == plain.l1.misses


@given(addrs=addresses)
@settings(max_examples=40, deadline=None)
def test_exclusive_l2_holds_victims_immediately(addrs):
    """In an exclusive hierarchy, an evicted L1 line is L2-resident the
    moment the victim transfer completes, and a bypassed word is kept in
    L2 right away."""
    hierarchy = TwoLevelCache(L1, L2, strategy="assume-miss")
    for addr in addrs:
        before_resident = hierarchy.l1.contains(addr)
        hierarchy.access(addr)
        if before_resident:
            continue
        line = hierarchy.l1_geometry.line_address(addr)
        l2_line = hierarchy._l2_line_of(line)
        if hierarchy.l1.contains(addr):
            # Stored in L1; nothing to assert about L2 (exclusive).
            continue
        # The word was bypassed: it must have been installed in L2.
        assert hierarchy.l2.contains_line(l2_line)
