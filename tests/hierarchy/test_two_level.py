"""Tests for the two-level hierarchy (paper Section 5)."""

import pytest

from repro.caches.geometry import CacheGeometry
from repro.core.exclusion_cache import DynamicExclusionCache
from repro.core.hitlast import L2BackedHitLastStore
from repro.hierarchy.two_level import Strategy, TwoLevelCache
from repro.trace.trace import Trace

L1 = CacheGeometry(64, 4)
L2 = CacheGeometry(256, 4)


def itrace(addrs):
    return Trace(addrs, [0] * len(addrs))


class TestConstruction:
    def test_strategy_from_string(self):
        hierarchy = TwoLevelCache(L1, L2, strategy="assume-miss")
        assert hierarchy.strategy is Strategy.ASSUME_MISS

    def test_rejects_set_associative_levels(self):
        with pytest.raises(ValueError):
            TwoLevelCache(CacheGeometry(64, 4, associativity=2), L2)

    def test_rejects_l2_smaller_than_l1(self):
        with pytest.raises(ValueError):
            TwoLevelCache(L2, L1)

    def test_rejects_l2_line_smaller_than_l1_line(self):
        with pytest.raises(ValueError):
            TwoLevelCache(CacheGeometry(64, 16), CacheGeometry(256, 4))

    def test_direct_mapped_strategy_uses_plain_l1(self):
        hierarchy = TwoLevelCache(L1, L2, strategy="direct-mapped")
        assert not isinstance(hierarchy.l1, DynamicExclusionCache)
        assert hierarchy.store is None

    def test_exclusion_strategies_use_de_l1(self):
        for strategy in ["ideal", "assume-hit", "assume-miss", "hashed"]:
            hierarchy = TwoLevelCache(L1, L2, strategy=strategy)
            assert isinstance(hierarchy.l1, DynamicExclusionCache)

    def test_exclusive_l2_does_not_allocate_on_miss(self):
        assert TwoLevelCache(L1, L2, strategy="assume-miss").l2.allocate_on_miss is False
        assert TwoLevelCache(L1, L2, strategy="hashed").l2.allocate_on_miss is False
        assert TwoLevelCache(L1, L2, strategy="assume-hit").l2.allocate_on_miss is True


class TestStrategyEnum:
    def test_uses_exclusion(self):
        assert not Strategy.DIRECT_MAPPED.uses_exclusion
        assert Strategy.HASHED.uses_exclusion

    def test_exclusive_l2(self):
        assert Strategy.ASSUME_MISS.exclusive_l2
        assert Strategy.HASHED.exclusive_l2
        assert not Strategy.ASSUME_HIT.exclusive_l2
        assert not Strategy.IDEAL.exclusive_l2


class TestInclusiveFlow:
    def test_l2_sees_only_l1_misses(self):
        hierarchy = TwoLevelCache(L1, L2, strategy="direct-mapped")
        hierarchy.simulate(itrace([0, 0, 0, 4]))
        assert hierarchy.l1.stats.accesses == 4
        assert hierarchy.l2.stats.accesses == 2  # the two L1 misses

    def test_l2_hit_after_l1_eviction(self):
        hierarchy = TwoLevelCache(L1, L2, strategy="direct-mapped")
        hierarchy.simulate(itrace([0, 64, 0]))
        # Final access: L1 miss (0 evicted by 64) but L2 still holds 0.
        assert hierarchy.l2.stats.hits == 1

    def test_inclusive_l2_contains_fetched_lines(self):
        hierarchy = TwoLevelCache(L1, L2, strategy="assume-hit")
        hierarchy.simulate(itrace([0, 4, 8]))
        assert hierarchy.l2.contains(0)
        assert hierarchy.l2.contains(4)


class TestExclusiveFlow:
    def test_l1_stored_lines_stay_out_of_l2(self):
        hierarchy = TwoLevelCache(L1, L2, strategy="assume-miss")
        hierarchy.simulate(itrace([0]))
        assert hierarchy.l1.contains(0)
        assert not hierarchy.l2.contains(0)

    def test_l1_victim_moves_to_l2(self):
        hierarchy = TwoLevelCache(L1, L2, strategy="assume-miss")
        # 0 loads; 64 bypasses (assume-miss => h=0); second 64 replaces.
        hierarchy.simulate(itrace([0, 64, 64]))
        assert hierarchy.l1.contains(64)
        assert hierarchy.l2.contains(0)

    def test_bypassed_line_is_kept_in_l2(self):
        hierarchy = TwoLevelCache(L1, L2, strategy="assume-miss")
        hierarchy.simulate(itrace([0, 64]))  # 64 bypassed in L1
        assert not hierarchy.l1.contains(64)
        assert hierarchy.l2.contains(64)

    def test_bypassed_line_hits_l2_next_time(self):
        hierarchy = TwoLevelCache(L1, L2, strategy="assume-miss")
        hierarchy.simulate(itrace([0, 64]))
        l2_hits = hierarchy.l2.stats.hits
        hierarchy.access(64)
        assert hierarchy.l2.stats.hits == l2_hits + 1


class TestHitLastMigration:
    def test_assume_hit_at_equal_sizes_degenerates_to_direct_mapped(self):
        """The paper's observation: if L2 == L1, every L1 miss is an L2
        miss, so the hit-last bit is always assumed set and the cache
        replaces on every miss — conventional behaviour."""
        trace = itrace([0, 64, 4, 68, 0, 64, 4, 68] * 10)
        same = TwoLevelCache(L1, CacheGeometry(64, 4), strategy="assume-hit")
        plain = TwoLevelCache(L1, CacheGeometry(64, 4), strategy="direct-mapped")
        a = same.simulate(trace)
        b = plain.simulate(trace)
        assert a.l1.misses == b.l1.misses

    def test_large_l2_assume_hit_approaches_ideal(self):
        trace = itrace(([0, 64] * 8 + [4, 68] * 8) * 20)
        big_l2 = CacheGeometry(4096, 4)
        assume_hit = TwoLevelCache(L1, big_l2, strategy="assume-hit").simulate(trace)
        ideal = TwoLevelCache(L1, big_l2, strategy="ideal").simulate(trace)
        assert assume_hit.l1.misses <= ideal.l1.misses + 8

    def test_l2_eviction_drops_hitlast_bits(self):
        hierarchy = TwoLevelCache(L1, CacheGeometry(128, 4), strategy="assume-hit")
        store = hierarchy.store
        assert isinstance(store, L2BackedHitLastStore)
        # Fill L2 set 0 with line 0, write a bit for it, then evict by
        # touching the conflicting L2 line 32 (128B cache = 32 lines).
        hierarchy.access(0)
        store.update(0, False)
        assert store.lookup(0) is False
        hierarchy.access(64)   # L1 conflict -> L2 access
        hierarchy.access(4 * 32)  # maps to L2 set 0, evicts line 0
        assert store.lookup(0) is True  # back to the assume-hit default


class TestResults:
    def test_result_rates(self):
        hierarchy = TwoLevelCache(L1, L2, strategy="direct-mapped")
        result = hierarchy.simulate(itrace([0, 64, 0, 64]))
        assert result.l1_miss_rate == 1.0
        assert result.l2_local_miss_rate == pytest.approx(0.5)
        assert result.l2_global_miss_rate == pytest.approx(0.5)

    def test_empty_trace(self):
        hierarchy = TwoLevelCache(L1, L2)
        result = hierarchy.simulate(Trace.empty())
        assert result.l1_miss_rate == 0.0
        assert result.l2_global_miss_rate == 0.0

    def test_stats_consistent(self):
        import random
        rng = random.Random(5)
        addrs = [rng.randrange(128) * 4 for _ in range(400)]
        for strategy in Strategy:
            hierarchy = TwoLevelCache(L1, L2, strategy=strategy)
            result = hierarchy.simulate(itrace(addrs))
            result.l1.check()
            result.l2.check()


class TestDifferentLineSizes:
    def test_l2_with_longer_lines(self):
        hierarchy = TwoLevelCache(
            CacheGeometry(64, 4), CacheGeometry(512, 16), strategy="assume-hit"
        )
        hierarchy.simulate(itrace([0, 4, 8, 12]))
        # All four words share one 16B L2 line: one L2 miss, then hits.
        assert hierarchy.l2.stats.misses == 1
