"""Integration tests run on mid-size traces (50k references): large
enough for the paper's shapes to be stable, small enough for CI."""

import pytest

from repro.experiments.common import clear_trace_cache


@pytest.fixture(autouse=True, scope="module")
def medium_traces():
    import os

    old = os.environ.get("REPRO_TRACE_SCALE")
    os.environ["REPRO_TRACE_SCALE"] = "0.25"
    clear_trace_cache()
    yield
    if old is None:
        os.environ.pop("REPRO_TRACE_SCALE", None)
    else:
        os.environ["REPRO_TRACE_SCALE"] = old
    clear_trace_cache()
