"""End-to-end checks of the paper's evaluation claims (shape, not
absolute numbers — see EXPERIMENTS.md for the full comparison).

Each test names the figure it guards.  Traces are 50k references
(scale 0.25), so thresholds are deliberately looser than the full-run
numbers recorded in EXPERIMENTS.md.
"""

import pytest

from repro.experiments import (
    fig03_per_benchmark,
    fig04_cache_size,
    fig05_improvement,
    fig07_l1_vs_l2,
    fig08_l2_missrate,
    fig11_line_size,
    fig12_improvement_b16,
    fig13_efficiency,
    fig14_data_cache,
    fig15_mixed_cache,
    hierarchy_sweep,
)
from repro.hierarchy.two_level import Strategy

#: Benchmarks the paper shows with high miss rates and big improvements.
HOT_BENCHMARKS = ["gcc", "li", "spice", "doduc"]

#: The small numeric kernels that fit any realistic cache.
COLD_BENCHMARKS = ["matrix300", "nasa7", "tomcatv"]


class TestFig03PerBenchmark:
    def test_hot_benchmarks_improve_substantially(self):
        results = fig03_per_benchmark.run()
        for name in HOT_BENCHMARKS:
            rates = results[name]
            reduction = 1 - rates["dynamic-exclusion"] / rates["direct-mapped"]
            assert reduction > 0.15, name

    def test_cold_benchmarks_nearly_unaffected(self):
        results = fig03_per_benchmark.run()
        for name in COLD_BENCHMARKS:
            rates = results[name]
            assert abs(rates["dynamic-exclusion"] - rates["direct-mapped"]) < 0.002, name

    def test_optimal_bounds_exclusion_everywhere(self):
        for name, rates in fig03_per_benchmark.run().items():
            assert rates["optimal"] <= rates["dynamic-exclusion"] + 1e-12, name

    def test_hot_benchmarks_have_high_miss_rates(self):
        results = fig03_per_benchmark.run()
        for name in HOT_BENCHMARKS:
            assert results[name]["direct-mapped"] > 0.05, name
        for name in COLD_BENCHMARKS:
            assert results[name]["direct-mapped"] < 0.01, name


class TestFig04Fig05SizeSweep:
    def test_miss_rates_fall_with_size(self):
        result = fig04_cache_size.run()
        dm = result.curve("direct-mapped")
        assert dm[0] > dm[-1]
        assert dm[-1] < 0.05

    def test_policy_ordering_at_every_size(self):
        result = fig04_cache_size.run()
        for size in result.parameters:
            dm = result.series["direct-mapped"].points[size]
            de = result.series["dynamic-exclusion"].points[size]
            opt = result.series["optimal"].points[size]
            assert opt <= de + 1e-12
            assert de <= dm + 1e-12

    def test_improvement_peaks_at_middle_size(self):
        """The paper's Figure 5 shape: a single interior peak."""
        size, value = fig05_improvement.peak()
        sizes = fig05_improvement.run().parameters
        assert sizes[0] < size < sizes[-1]
        assert value > 20.0

    def test_improvement_small_at_extremes(self):
        result = fig05_improvement.run()
        curve = result.curve("dynamic-exclusion")
        peak = max(curve)
        assert curve[0] < peak / 2
        assert curve[-1] < peak / 2

    def test_optimal_reduction_dominates_exclusion(self):
        result = fig05_improvement.run()
        for size in result.parameters:
            de = result.series["dynamic-exclusion"].points[size]
            opt = result.series["optimal"].points[size]
            assert opt >= de - 1e-9


class TestFig07Fig08Hierarchy:
    def test_assume_hit_degenerates_at_equal_sizes(self):
        assert fig07_l1_vs_l2.assume_hit_degenerates()

    def test_assume_hit_converges_to_ideal_with_big_l2(self):
        sweep = hierarchy_sweep.run()
        big = sweep.ratios[-1]
        ideal = sweep.points[(Strategy.IDEAL, big)].l1_miss_rate
        assume_hit = sweep.points[(Strategy.ASSUME_HIT, big)].l1_miss_rate
        assert assume_hit == pytest.approx(ideal, rel=0.05)

    def test_most_benefit_by_ratio_four(self):
        """Paper: 'most of the performance is achieved as long as the L2
        is at least 4 times as large as the L1'."""
        sweep = hierarchy_sweep.run()
        baseline = sweep.points[(Strategy.DIRECT_MAPPED, 1)].l1_miss_rate
        ideal = sweep.points[(Strategy.IDEAL, sweep.ratios[-1])].l1_miss_rate
        at_four = sweep.points[(Strategy.ASSUME_HIT, 4)].l1_miss_rate
        full_gain = baseline - ideal
        gain_at_four = baseline - at_four
        assert gain_at_four > 0.5 * full_gain

    def test_hashed_is_independent_of_l2(self):
        sweep = hierarchy_sweep.run()
        rates = {sweep.points[(Strategy.HASHED, r)].l1_miss_rate for r in sweep.ratios}
        assert max(rates) - min(rates) < 1e-9

    def test_exclusive_strategies_cut_l2_misses(self):
        assert fig08_l2_missrate.exclusive_strategies_win()

    def test_assume_hit_l2_matches_conventional(self):
        """Paper: the assume-hit hierarchy's L2 curve is the
        direct-mapped curve."""
        sweep = hierarchy_sweep.run()
        for ratio in sweep.ratios:
            conventional = sweep.points[(Strategy.DIRECT_MAPPED, ratio)]
            assume_hit = sweep.points[(Strategy.ASSUME_HIT, ratio)]
            assert assume_hit.l2_global_miss_rate == pytest.approx(
                conventional.l2_global_miss_rate, rel=0.02
            )


class TestFig11Fig12LineSizes:
    def test_longer_lines_lower_absolute_miss_rates(self):
        result = fig11_line_size.run()
        dm = result.curve("direct-mapped")
        assert all(earlier > later for earlier, later in zip(dm, dm[1:]))

    def test_exclusion_improves_at_every_line_size(self):
        for line_size, reduction in fig11_line_size.improvements().items():
            assert reduction > 10.0, f"{line_size}B"

    def test_optimal_bounds_exclusion(self):
        result = fig11_line_size.run()
        for b in result.parameters:
            de = result.series["dynamic-exclusion"].points[b]
            opt = result.series["optimal"].points[b]
            assert opt <= de + 1e-12

    def test_b16_sweep_still_shows_interior_peak(self):
        reductions = fig12_improvement_b16.run()
        curve = reductions.curve("dynamic-exclusion")
        peak = max(curve)
        assert peak > 15.0
        assert curve[-1] < peak / 2


class TestFig13Efficiency:
    def test_size_overhead_is_small(self):
        result = fig13_efficiency.run()
        assert result.exclusion.delta_size_percent < 5.0

    def test_doubling_costs_full_capacity(self):
        result = fig13_efficiency.run()
        assert result.doubling.delta_size_percent > 90.0

    def test_exclusion_is_far_more_efficient(self):
        """Paper: 'roughly 15 times more efficient than adding
        capacity'. We require > 3x on scaled-down traces."""
        assert fig13_efficiency.run().advantage > 3.0

    def test_doubling_reduces_misses_more_in_absolute_terms(self):
        result = fig13_efficiency.run()
        assert result.doubled_miss_rate < result.exclusion_miss_rate


class TestFig14Fig15DataAndMixed:
    def test_data_improvement_is_small(self):
        """Paper: 'for small cache sizes there is a small improvement'
        but nothing like the instruction-cache factors."""
        result = fig14_data_cache.run()
        for size in result.parameters:
            dm = result.series["direct-mapped"].points[size]
            de = result.series["dynamic-exclusion"].points[size]
            if dm > 0:
                assert (dm - de) / dm < 0.20, size

    def test_direct_mapped_closer_to_optimal_for_data(self):
        """Paper: 'a normal direct-mapped cache is closer to optimal for
        data references than for instruction references'."""
        instr = fig04_cache_size.run()
        data = fig14_data_cache.run()
        size = 16 * 1024
        instr_gap = 1 - instr.series["optimal"].points[size] / instr.series["direct-mapped"].points[size]
        data_gap = 1 - data.series["optimal"].points[size] / data.series["direct-mapped"].points[size]
        assert data_gap < instr_gap

    def test_mixed_improvement_largest_at_small_sizes(self):
        """Paper: instruction misses dominate small combined caches, so
        the improvement is large there and shrinks for big caches."""
        reductions = fig15_mixed_cache.reductions()
        sizes = sorted(reductions)
        mid = [reductions[s] for s in sizes[2:6]]
        assert max(mid) > 10.0
        assert reductions[sizes[-1]] < 5.0
