"""Every experiment module must run end to end and produce a report.

These run on 4k-reference traces (see conftest) so they only check
plumbing and gross structure, not the paper numbers — those are the
integration tests' job.
"""

import pytest

from repro.experiments import EXPERIMENTS


@pytest.mark.parametrize("key", sorted(EXPERIMENTS))
def test_report_is_nonempty_text(key):
    module = EXPERIMENTS[key]
    text = module.report()
    assert isinstance(text, str)
    assert len(text.splitlines()) >= 3
    assert module.TITLE.split(":")[0] in text


def test_fig03_covers_every_benchmark():
    from repro.experiments import fig03_per_benchmark
    from repro.workloads.registry import benchmark_names

    results = fig03_per_benchmark.run()
    assert sorted(results) == benchmark_names()
    for rates in results.values():
        assert set(rates) == {"direct-mapped", "dynamic-exclusion", "optimal"}
        for value in rates.values():
            assert 0.0 <= value <= 1.0


def test_fig04_grid_is_complete():
    from repro.experiments import fig04_cache_size
    from repro.experiments.common import SIZE_SWEEP_KB

    result = fig04_cache_size.run()
    assert result.parameters == [kb * 1024 for kb in SIZE_SWEEP_KB]
    for label in ["direct-mapped", "dynamic-exclusion", "optimal"]:
        assert len(result.curve(label)) == len(SIZE_SWEEP_KB)


def test_fig05_reductions_derive_from_fig04():
    from repro.experiments import fig04_cache_size, fig05_improvement

    base = fig04_cache_size.run()
    reductions = fig05_improvement.run()
    size = base.parameters[0]
    dm = base.series["direct-mapped"].points[size]
    de = base.series["dynamic-exclusion"].points[size]
    expected = 100.0 * (dm - de) / dm if dm else 0.0
    assert reductions.series["dynamic-exclusion"].points[size] == pytest.approx(expected)


def test_fig05_peak_reports_a_swept_size():
    from repro.experiments import fig05_improvement
    from repro.experiments.common import SIZE_SWEEP_KB

    size, value = fig05_improvement.peak()
    assert size // 1024 in SIZE_SWEEP_KB
    assert value == max(fig05_improvement.run().curve("dynamic-exclusion"))


def test_hierarchy_sweep_shared_by_fig07_08_09():
    from repro.experiments import fig07_l1_vs_l2, fig08_l2_missrate, hierarchy_sweep

    assert fig07_l1_vs_l2.run() is fig08_l2_missrate.run()
    assert fig07_l1_vs_l2.run() is hierarchy_sweep.run()


def test_fig09_improvements_bounded():
    from repro.experiments import fig09_l1_improvement

    curves = fig09_l1_improvement.run()
    for values in curves.values():
        for value in values:
            assert -100.0 <= value <= 100.0


def test_fig11_line_sizes():
    from repro.experiments import fig11_line_size
    from repro.experiments.common import LINE_SIZE_SWEEP

    result = fig11_line_size.run()
    assert result.parameters == LINE_SIZE_SWEEP
    assert set(fig11_line_size.improvements()) == set(LINE_SIZE_SWEEP)


def test_fig13_structure():
    from repro.experiments import fig13_efficiency

    result = fig13_efficiency.run()
    assert 0.0 <= result.exclusion_miss_rate <= result.baseline_miss_rate + 0.05
    assert result.exclusion.delta_size_percent < 10.0
    assert result.doubling.delta_size_percent > 90.0


def test_sec3_matches_analytic_counts():
    from repro.experiments import sec3_patterns

    for row in sec3_patterns.run():
        assert row.dm_misses == row.dm_expected
        assert row.opt_misses == row.opt_expected


def test_cli_list(capsys):
    from repro.experiments.__main__ import main

    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig05" in out


def test_cli_single_experiment(capsys):
    from repro.experiments.__main__ import main

    assert main(["--only", "sec3"]) == 0
    out = capsys.readouterr().out
    assert "Section 3" in out


def test_cli_rejects_unknown_id(capsys):
    from repro.experiments.__main__ import main

    with pytest.raises(SystemExit):
        main(["--only", "fig99"])


def test_cli_filter_selects_by_substring(capsys):
    from repro.experiments.__main__ import main

    assert main(["--filter", "section 3"]) == 0
    out = capsys.readouterr().out
    assert "# sec3:" in out
    assert "# fig04:" not in out


def test_cli_filter_rejects_no_match(capsys):
    from repro.experiments.__main__ import main

    with pytest.raises(SystemExit):
        main(["--filter", "zzz-no-such-experiment"])


def test_repro_cli_experiments_subcommand(capsys):
    from repro.cli import main

    assert main(["experiments", "--list"]) == 0
    out = capsys.readouterr().out
    assert "fig05" in out
    assert main(["experiments", "--only", "sec3"]) == 0
    assert "Section 3" in capsys.readouterr().out


def test_cli_svg_output(tmp_path, capsys):
    from repro.experiments.__main__ import main

    assert main(["--only", "fig04", "--svg", str(tmp_path)]) == 0
    svg = tmp_path / "fig04.svg"
    assert svg.exists()
    assert svg.read_text().startswith("<svg")


def test_cli_svg_skips_non_sweep_experiments(tmp_path, capsys):
    from repro.experiments.__main__ import main

    assert main(["--only", "sec3", "--svg", str(tmp_path)]) == 0
    assert not (tmp_path / "sec3.svg").exists()


def test_cli_resume_dir_journals_and_replays(tmp_path, capsys):
    from repro.experiments.__main__ import main
    from repro.experiments.spec import clear_result_cache
    from repro.perf.journal import JOURNAL_FILENAME, SweepJournal

    resume = tmp_path / "resume"
    clear_result_cache()  # the per-process memo would skip the sweep
    assert main(["--only", "fig04", "--resume-dir", str(resume)]) == 0
    first = capsys.readouterr().out
    assert (resume / JOURNAL_FILENAME).exists()
    journaled = len(SweepJournal(resume))
    assert journaled > 0

    # Second run replays the journal and reports identically.
    clear_result_cache()
    assert main(["--only", "fig04", "--resume-dir", str(resume)]) == 0
    second = capsys.readouterr().out
    assert len(SweepJournal(resume)) == journaled

    def table(text):
        return [line for line in text.splitlines() if "KB" in line or "%" in line]

    assert table(first) == table(second)


def test_cli_resume_dir_records_telemetry(tmp_path, capsys):
    import json

    from repro.experiments.__main__ import main
    from repro.experiments.spec import clear_result_cache

    resume = tmp_path / "resume"
    clear_result_cache()
    assert main(["--only", "fig04", "--resume-dir", str(resume)]) == 0
    telemetry_path = resume / "fig04.telemetry.json"
    assert telemetry_path.exists()
    data = json.loads(telemetry_path.read_text())
    assert data["kind"] == "experiment-telemetry"
    assert data["experiment"] == "fig04"
    assert data["sweeps"]
    assert all(s["kind"] == "sweep-telemetry" for s in data["sweeps"])
    capsys.readouterr()


def test_cli_progress_reports_cells(capsys):
    from repro.experiments.__main__ import main
    from repro.experiments.spec import clear_result_cache

    clear_result_cache()
    assert main(["--only", "fig04", "--progress"]) == 0
    err = capsys.readouterr().err
    assert "[sweep " in err
    assert "[fig04]" in err
    assert "cells:" in err


def test_cli_rejects_bad_repro_workers_eagerly(monkeypatch, capsys):
    from repro.experiments.__main__ import main

    monkeypatch.setenv("REPRO_WORKERS", "banana")
    with pytest.raises(SystemExit):
        main(["--only", "sec3"])
    assert "REPRO_WORKERS" in capsys.readouterr().err


def test_cli_rejects_bad_trace_scale_eagerly(monkeypatch, capsys):
    from repro.experiments.__main__ import main

    monkeypatch.setenv("REPRO_TRACE_SCALE", "zero")
    with pytest.raises(SystemExit):
        main(["--only", "sec3"])
    assert "REPRO_TRACE_SCALE" in capsys.readouterr().err


def test_cli_trace_dir_writes_observability_artifacts(tmp_path, capsys, monkeypatch):
    from repro import obs
    from repro.experiments.__main__ import main
    from repro.experiments.spec import clear_result_cache

    clear_result_cache()  # force a real run so the span tree is populated
    monkeypatch.setenv("REPRO_PROFILE", "1")
    assert main(["--only", "fig04", "--engine", "fast",
                 "--trace-dir", str(tmp_path)]) == 0

    run_dir = tmp_path / "fig04"
    manifest = obs.read_manifest(run_dir)
    assert manifest is not None
    assert manifest["spec"] == "fig04"
    assert manifest["engine"] == "fast"
    assert manifest["wall_seconds"] > 0
    assert manifest["env"]["repro"]["REPRO_PROFILE"] == "1"

    spans = obs.read_spans(run_dir / obs.TRACE_FILENAME)
    names = {span.name for span in spans}
    assert {"experiment", "run_spec", "sweep", "cell", "simulate"} <= names
    roots = [span for span in spans if span.parent_id is None]
    assert [span.name for span in roots] == ["experiment"]
    # The span tree accounts for (at least) 95% of the manifest's wall time.
    coverage = sum(span.duration for span in roots) / manifest["wall_seconds"]
    assert coverage >= 0.95

    assert (run_dir / obs.PROFILE_FILENAME).exists()
    # The report is on stdout; the artefact paths are stderr chatter.
    captured = capsys.readouterr()
    assert "trace.jsonl" not in captured.out
    assert "manifest written to" in captured.err
    assert "profile written to" in captured.err


def test_trace_dir_instrumentation_leaves_results_unchanged(tmp_path):
    from repro.experiments import fig04_cache_size
    from repro.experiments.__main__ import main
    from repro.experiments.spec import clear_result_cache

    clear_result_cache()
    plain = fig04_cache_size.run()
    clear_result_cache()
    assert main(["--only", "fig04", "--trace-dir", str(tmp_path)]) == 0
    traced = fig04_cache_size.run()
    assert traced == plain
