"""Unit tests for the declarative spec layer (repro.experiments.spec)."""

from dataclasses import dataclass

import pytest

from repro.experiments import common
from repro.experiments.spec import (
    BenchmarkSuite,
    ExperimentSpec,
    SweepCellError,
    _RESULT_CACHE,
    all_specs,
    get_spec,
    register,
    run_spec,
)


@dataclass(frozen=True)
class TinyFactory:
    line_size: int = 4

    def __call__(self, size):
        from repro.caches.direct_mapped import DirectMappedCache
        from repro.caches.geometry import CacheGeometry

        return DirectMappedCache(CacheGeometry(int(size), self.line_size))


@dataclass(frozen=True)
class BoomFactory:
    def __call__(self, size):
        raise RuntimeError("boom")


def _grid_spec(spec_id="test-grid", **overrides):
    fields = dict(
        id=spec_id,
        title="test grid",
        parameter_name="cache size",
        parameters=(1024, 2048),
        factories=(("dm", TinyFactory()),),
        traces=BenchmarkSuite("instruction"),
    )
    fields.update(overrides)
    return ExperimentSpec(**fields)


def _count_compute():
    _count_compute.calls += 1
    return {"calls": _count_compute.calls}


_count_compute.calls = 0


class TestShapes:
    def test_no_shape_rejected(self):
        with pytest.raises(ValueError, match="exactly one"):
            ExperimentSpec(id="x", title="x")

    def test_two_shapes_rejected(self):
        with pytest.raises(ValueError, match="exactly one"):
            _grid_spec(compute=_count_compute)

    def test_grid_needs_traces(self):
        with pytest.raises(ValueError, match="factories and traces"):
            _grid_spec(traces=None)

    def test_derived_needs_base(self):
        with pytest.raises(ValueError, match="base spec ids"):
            ExperimentSpec(id="x", title="x", derive=_count_compute)

    def test_kind(self):
        assert _grid_spec().kind == "grid"
        assert ExperimentSpec(id="x", title="x", compute=_count_compute).kind == "custom"
        assert (
            ExperimentSpec(
                id="x", title="x", base=("fig04",), derive=_count_compute
            ).kind
            == "derived"
        )


class TestFingerprint:
    def test_id_and_title_are_not_identity(self):
        a = _grid_spec("one", title="one title")
        b = _grid_spec("two", title="two title")
        assert a.fingerprint() == b.fingerprint()

    def test_grid_changes_change_identity(self):
        assert _grid_spec().fingerprint() != _grid_spec(
            parameters=(1024,)
        ).fingerprint()
        assert _grid_spec().fingerprint() != _grid_spec(
            factories=(("dm", TinyFactory(line_size=16)),)
        ).fingerprint()
        assert _grid_spec().fingerprint() != _grid_spec(
            traces=BenchmarkSuite("data")
        ).fingerprint()

    def test_lambda_component_rejected(self):
        spec = _grid_spec(collect=lambda grid: grid)
        with pytest.raises(ValueError, match="lambda"):
            spec.fingerprint()

    def test_address_bearing_repr_rejected(self):
        class Plain:
            def __call__(self, size):  # pragma: no cover - never invoked
                return None

        spec = _grid_spec(factories=(("dm", Plain()),))
        with pytest.raises(ValueError, match="memory"):
            spec.fingerprint()


class TestRegistry:
    def test_all_real_specs_registered(self):
        visible = {spec.id for spec in all_specs()}
        from repro.experiments import EXPERIMENTS

        assert visible == set(EXPERIMENTS)

    def test_hidden_specs_excluded_but_reachable(self):
        assert "hierarchy" not in {s.id for s in all_specs()}
        assert get_spec("hierarchy").hidden
        assert "fig04-b16" in {s.id for s in all_specs(include_hidden=True)}

    def test_duplicate_id_rejected(self):
        register(_grid_spec("test-dup"))
        try:
            with pytest.raises(ValueError, match="already registered"):
                register(_grid_spec("test-dup", parameters=(4096,)))
        finally:
            from repro.experiments.spec import _REGISTRY

            _REGISTRY.pop("test-dup", None)

    def test_unknown_id(self):
        with pytest.raises(KeyError, match="unknown experiment spec"):
            get_spec("fig99")

    def test_registration_fingerprints_eagerly(self):
        with pytest.raises(ValueError, match="lambda"):
            register(_grid_spec("test-bad", collect=lambda grid: grid))


class TestRunSpec:
    def test_grid_produces_sweep(self):
        result = run_spec(_grid_spec())
        assert result.parameters == [1024, 2048]
        assert set(result.series) == {"dm"}
        for value in result.series["dm"].points.values():
            assert 0.0 <= value <= 1.0

    def test_results_are_memoised_per_fingerprint(self):
        _count_compute.calls = 0
        a = ExperimentSpec(id="memo-a", title="a", compute=_count_compute)
        b = ExperimentSpec(id="memo-b", title="b", compute=_count_compute)
        assert run_spec(a) is run_spec(b)  # same fingerprint, one computation
        assert _count_compute.calls == 1

    def test_scale_change_evicts_and_recomputes(self, monkeypatch):
        _count_compute.calls = 0
        spec = ExperimentSpec(id="memo-scale", title="x", compute=_count_compute)
        run_spec(spec)
        monkeypatch.setenv("REPRO_TRACE_SCALE", "0.01")
        run_spec(spec)
        assert _count_compute.calls == 2
        budget = common.max_refs()
        assert all(key[1] == budget for key in _RESULT_CACHE)

    def test_failing_cell_raises_sweep_cell_error(self):
        spec = _grid_spec("test-boom", factories=(("boom", BoomFactory()),))
        with pytest.raises(SweepCellError):
            run_spec(spec)

    def test_engine_hint_matches_reference(self):
        reference = run_spec(_grid_spec())
        fast = run_spec(_grid_spec(engine="fast"))
        for size in reference.parameters:
            assert fast.series["dm"].points[size] == pytest.approx(
                reference.series["dm"].points[size]
            )

    def test_empty_trace_axis_rejected(self):
        @dataclass(frozen=True)
        class NoTraces:
            def for_parameter(self, parameter):
                return []

        with pytest.raises(ValueError, match="no traces"):
            run_spec(_grid_spec("test-empty", traces=NoTraces()))
