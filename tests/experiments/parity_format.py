"""Shape-generic serialization for the spec-refactor parity gate.

The golden files under ``tests/experiments/golden/`` were captured from
the pre-refactor ``run()`` implementations at ``REPRO_TRACE_SCALE=0.05``;
``to_jsonable`` turns any experiment result — ``SweepResult``,
``HierarchySweep``, dataclasses, dicts keyed by non-string objects —
into a stable JSON form, and ``assert_parity`` compares a regenerated
result against a golden field-for-field (floats to 1e-9 relative, so a
``statistics.mean`` vs ``sum/len`` aggregation change cannot trip it).
"""

from __future__ import annotations

import dataclasses
import enum


def to_jsonable(obj):
    """A JSON-stable, type-tagged form of any experiment result."""
    if isinstance(obj, enum.Enum) and isinstance(obj, (int, float, str)):
        # json.dumps collapses mixin enums (class Strategy(str, Enum))
        # to their plain value; match it so regenerated results compare
        # equal to a golden that round-tripped through JSON.
        return to_jsonable(obj.value)
    if isinstance(obj, bool) or obj is None or isinstance(obj, (int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return {"__enum__": type(obj).__name__, "value": to_jsonable(obj.value)}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(item) for item in obj]
    if isinstance(obj, dict):
        # Keys may be ints, floats, tuples, enums: serialize as ordered
        # [key, value] pairs instead of coercing keys to strings.
        return {"__dict__": [[to_jsonable(k), to_jsonable(v)] for k, v in obj.items()]}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": type(obj).__name__,
            "fields": {
                f.name: to_jsonable(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    raise TypeError(f"no JSON form for {type(obj).__name__}: {obj!r}")


def assert_parity(golden, actual, where="result", rel=1e-9):
    """Recursively compare a golden JSON tree against ``to_jsonable(actual)``."""
    _compare(golden, to_jsonable(actual), where, rel)


def _compare(golden, actual, where, rel):
    if isinstance(golden, float) or isinstance(actual, float):
        assert isinstance(actual, (int, float)) and isinstance(golden, (int, float)), (
            f"{where}: expected number, got {actual!r} vs golden {golden!r}"
        )
        tolerance = rel * max(abs(golden), abs(actual), 1e-300)
        assert abs(golden - actual) <= tolerance, (
            f"{where}: {actual!r} != golden {golden!r} (rel tol {rel})"
        )
        return
    assert type(golden) is type(actual), (
        f"{where}: type {type(actual).__name__} != golden {type(golden).__name__}"
    )
    if isinstance(golden, dict):
        assert set(golden) == set(actual), (
            f"{where}: keys {sorted(actual)} != golden {sorted(golden)}"
        )
        for key in golden:
            _compare(golden[key], actual[key], f"{where}.{key}", rel)
    elif isinstance(golden, list):
        assert len(golden) == len(actual), (
            f"{where}: length {len(actual)} != golden {len(golden)}"
        )
        for index, (g, a) in enumerate(zip(golden, actual)):
            _compare(g, a, f"{where}[{index}]", rel)
    else:
        assert golden == actual, f"{where}: {actual!r} != golden {golden!r}"
