"""Tests for the experiment infrastructure."""

import pytest

from repro.caches.geometry import CacheGeometry
from repro.core.exclusion_cache import DynamicExclusionCache
from repro.core.long_lines import LastLineBufferCache
from repro.experiments import common


class TestTraceScale:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_SCALE", raising=False)
        assert common.trace_scale() == 1.0
        assert common.max_refs() == common.BASE_MAX_REFS

    def test_scale_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SCALE", "0.5")
        assert common.max_refs() == common.BASE_MAX_REFS // 2

    def test_bad_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SCALE", "banana")
        with pytest.raises(ValueError, match="number"):
            common.trace_scale()

    def test_non_positive_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SCALE", "0")
        with pytest.raises(ValueError, match="positive"):
            common.trace_scale()


class TestTraceCache:
    def test_traces_are_memoised(self):
        a = common.cached_trace("tomcatv")
        b = common.cached_trace("tomcatv")
        assert a is b

    def test_distinct_kinds_distinct_traces(self):
        assert common.cached_trace("tomcatv", "instruction") is not common.cached_trace(
            "tomcatv", "data"
        )

    def test_scale_invalidates(self, monkeypatch):
        a = common.cached_trace("tomcatv")
        monkeypatch.setenv("REPRO_TRACE_SCALE", "0.01")
        b = common.cached_trace("tomcatv")
        assert len(b) < len(a)

    def test_all_traces_order(self):
        from repro.workloads.registry import benchmark_names

        traces = common.all_traces()
        assert [t.name for t in traces] == benchmark_names()

    def test_clear(self):
        a = common.cached_trace("tomcatv")
        common.clear_trace_cache()
        assert common.cached_trace("tomcatv") is not a


class TestFactories:
    def test_standard_factories_single_word(self):
        factories = common.standard_factories(4)
        de = factories["dynamic-exclusion"](1024)
        assert isinstance(de, DynamicExclusionCache)

    def test_standard_factories_long_lines(self):
        factories = common.standard_factories(16)
        de = factories["dynamic-exclusion"](1024)
        assert isinstance(de, LastLineBufferCache)

    def test_factories_build_fresh_instances(self):
        factories = common.standard_factories(4)
        assert factories["direct-mapped"](1024) is not factories["direct-mapped"](1024)

    def test_geometry_matches_parameter(self):
        factories = common.standard_factories(4)
        cache = factories["direct-mapped"](2048)
        assert cache.geometry == CacheGeometry(2048, 4)


class TestTraceCacheBounding:
    def test_stale_scales_are_evicted(self, monkeypatch):
        """Flipping REPRO_TRACE_SCALE must not accumulate one trace suite
        per scale ever used."""
        common.clear_trace_cache()
        monkeypatch.setenv("REPRO_TRACE_SCALE", "0.01")
        common.cached_trace("gcc")
        monkeypatch.setenv("REPRO_TRACE_SCALE", "0.02")
        common.cached_trace("gcc")
        budget = common.max_refs()
        assert all(key[2] == budget for key in common._TRACE_CACHE)
        assert len(common._TRACE_CACHE) == 1
        common.clear_trace_cache()

    def test_same_scale_entries_survive(self, monkeypatch):
        common.clear_trace_cache()
        monkeypatch.setenv("REPRO_TRACE_SCALE", "0.01")
        common.cached_trace("gcc")
        common.cached_trace("li")
        gcc = common.cached_trace("gcc")  # hit: no eviction pass
        assert common.cached_trace("gcc") is gcc
        assert len(common._TRACE_CACHE) == 2
        common.clear_trace_cache()

    def test_flipping_back_regenerates(self, monkeypatch):
        common.clear_trace_cache()
        monkeypatch.setenv("REPRO_TRACE_SCALE", "0.01")
        first = common.cached_trace("gcc")
        monkeypatch.setenv("REPRO_TRACE_SCALE", "0.02")
        common.cached_trace("gcc")
        monkeypatch.setenv("REPRO_TRACE_SCALE", "0.01")
        again = common.cached_trace("gcc")
        assert again is not first and len(again) == len(first)
        common.clear_trace_cache()
