"""The differential gate for the spec refactor.

``tests/experiments/golden/<id>.json`` holds every experiment's
``run()`` output captured *before* the declarative spec layer existed
(``tools/generate_parity_goldens.py``, REPRO_TRACE_SCALE=0.05).  Each
test here re-runs the experiment through ``run_spec`` and compares
field for field: same dict keys in the same order, same list lengths,
floats to 1e-9 relative (``statistics.mean`` became ``sum/len``).

Any behaviour change to a figure — intended or not — fails here until
the goldens are regenerated.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.common import clear_trace_cache

from .parity_format import assert_parity

GOLDEN_DIR = Path(__file__).parent / "golden"

#: The scale every golden was captured at.
PARITY_SCALE = "0.05"


@pytest.fixture(autouse=True)
def tiny_traces():
    """Override the conftest fixture: parity runs at the golden scale,
    and the result cache must survive across tests so the derived
    experiments (fig05/fig07/...) reuse their base sweeps instead of
    recomputing them per test."""
    yield


@pytest.fixture(scope="module", autouse=True)
def parity_scale():
    before = os.environ.get("REPRO_TRACE_SCALE")
    os.environ["REPRO_TRACE_SCALE"] = PARITY_SCALE
    clear_trace_cache()
    yield
    if before is None:
        os.environ.pop("REPRO_TRACE_SCALE", None)
    else:
        os.environ["REPRO_TRACE_SCALE"] = before
    clear_trace_cache()


def _golden(key: str) -> dict:
    path = GOLDEN_DIR / f"{key}.json"
    if not path.exists():
        pytest.fail(f"missing golden {path}; run tools/generate_parity_goldens.py")
    return json.loads(path.read_text())


@pytest.mark.parametrize("key", list(EXPERIMENTS))
def test_spec_output_matches_prerefactor_golden(key):
    golden = _golden(key)
    assert golden["trace_scale"] == float(PARITY_SCALE)
    assert_parity(golden["result"], EXPERIMENTS[key].run(), where=key)
