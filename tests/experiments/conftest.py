"""Shared fixtures for experiment tests: shrink traces so the whole
figure suite runs in seconds."""

import pytest

from repro.experiments.common import clear_trace_cache


@pytest.fixture(autouse=True)
def tiny_traces(monkeypatch):
    """Run every experiment on 4k-reference traces."""
    monkeypatch.setenv("REPRO_TRACE_SCALE", "0.02")
    clear_trace_cache()
    yield
    clear_trace_cache()
