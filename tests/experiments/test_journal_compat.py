"""Resume-format compatibility: PR-3 journals must replay under run_spec.

``golden/pr3_journal_fig04.jsonl`` is a real sweep journal written by
the pre-spec pipeline (fig04, REPRO_TRACE_SCALE=0.05).  The spec layer
must produce byte-identical cell identities — same content-hash keys,
same payload fields — or every interrupted sweep on disk would silently
recompute from scratch after an upgrade.
"""

from __future__ import annotations

import os
import shutil
from pathlib import Path

import pytest

from repro import perf
from repro.experiments.common import clear_trace_cache
from repro.experiments.spec import run_spec
from repro.perf.journal import JOURNAL_FILENAME, SweepJournal

GOLDEN_DIR = Path(__file__).parent / "golden"
FIXTURE = GOLDEN_DIR / "pr3_journal_fig04.jsonl"

PARITY_SCALE = "0.05"


@pytest.fixture(autouse=True)
def tiny_traces():
    """Override the conftest fixture: the journal fixture was captured
    at the parity scale, and cell identities embed the trace budget."""
    yield


@pytest.fixture(autouse=True)
def parity_scale(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_SCALE", PARITY_SCALE)
    clear_trace_cache()
    yield
    clear_trace_cache()


def test_pr3_journal_replays_every_fig04_cell(tmp_path):
    resume = tmp_path / "resume"
    resume.mkdir()
    shutil.copy(FIXTURE, resume / JOURNAL_FILENAME)
    fixture_entries = len(SweepJournal(resume))
    assert fixture_entries > 0

    before = (resume / JOURNAL_FILENAME).read_text()
    perf.drain_telemetry()
    run_spec("fig04", journal=str(resume))
    records = perf.drain_telemetry()

    cells = sum(r.total for r in records)
    cached = sum(r.cached for r in records)
    assert cells == fixture_entries, "fig04 grid size drifted from the PR-3 journal"
    assert cached == cells, (
        f"only {cached}/{cells} cells replayed from the PR-3 journal; "
        "cell identities (keys or payloads) have drifted"
    )
    # Nothing recomputed means nothing appended: the file is untouched.
    assert (resume / JOURNAL_FILENAME).read_text() == before


def test_spec_journal_round_trips_its_own_format(tmp_path):
    resume = tmp_path / "resume"
    perf.drain_telemetry()
    run_spec("fig13", journal=str(resume))
    first = perf.drain_telemetry()
    assert sum(r.cached for r in first) == 0

    from repro.experiments.spec import clear_result_cache

    clear_result_cache()
    run_spec("fig13", journal=str(resume))
    second = perf.drain_telemetry()
    assert sum(r.cached for r in second) == sum(r.total for r in second)
