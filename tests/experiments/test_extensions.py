"""Focused tests for the extension experiments (beyond the generic
smoke tests in test_experiments_smoke)."""

import pytest

from repro.experiments import (
    ext_associativity,
    ext_context_switch,
    ext_hashed_bits,
    ext_split,
    ext_traffic,
)


class TestAssociativity:
    def test_all_configs_swept(self):
        result = ext_associativity.run()
        assert set(result.series) == {
            "direct-mapped", "dynamic-exclusion", "victim-4",
            "2-way", "2-way+DE", "4-way",
        }

    def test_amat_covers_every_config(self):
        amats = ext_associativity.amat_at_reference()
        assert set(amats) == set(ext_associativity.TIMING_MODELS)
        for value in amats.values():
            assert value >= 1.0

    def test_four_way_miss_rate_not_worse_than_two_way(self):
        result = ext_associativity.run()
        for size in result.parameters:
            two = result.series["2-way"].points[size]
            four = result.series["4-way"].points[size]
            assert four <= two + 0.01


class TestContextSwitch:
    def test_all_quanta_present(self):
        rows = ext_context_switch.run()
        assert sorted(rows) == sorted(ext_context_switch.QUANTA)

    def test_policy_ordering_preserved_under_sharing(self):
        for rates in ext_context_switch.run().values():
            assert rates["optimal"] <= rates["dynamic-exclusion"] + 1e-12
            assert rates["dynamic-exclusion"] <= rates["direct-mapped"] + 1e-12

    def test_reductions_match_rates(self):
        rows = ext_context_switch.run()
        reductions = ext_context_switch.reductions()
        for quantum, rates in rows.items():
            dm = rates["direct-mapped"]
            de = rates["dynamic-exclusion"]
            expected = 100.0 * (dm - de) / dm if dm else 0.0
            assert reductions[quantum] == pytest.approx(expected)


class TestHashedBits:
    def test_every_size_swept(self):
        rates = ext_hashed_bits.run()
        for bits in ext_hashed_bits.BITS_PER_LINE:
            assert bits in rates
        assert "ideal" in rates and "direct-mapped" in rates

    def test_hashed_never_worse_than_direct_mapped(self):
        rates = ext_hashed_bits.run()
        for bits in ext_hashed_bits.BITS_PER_LINE:
            assert rates[bits] <= rates["direct-mapped"] + 0.01

    def test_four_bits_matches_ideal(self):
        """The paper's sizing claim, at a generous tolerance."""
        assert ext_hashed_bits.four_bits_close_to_ideal(tolerance=0.05)


class TestSplit:
    def test_configs_and_sizes(self):
        result = ext_split.run()
        assert set(result.series) == {
            "unified DM", "unified DE", "split DM", "split DM+DE(I)",
        }
        assert len(result.parameters) == len(ext_split.SIZES_KB)

    def test_unified_de_beats_unified_dm(self):
        result = ext_split.run()
        for size in result.parameters:
            de = result.series["unified DE"].points[size]
            dm = result.series["unified DM"].points[size]
            assert de <= dm + 1e-12

    def test_exclusion_helps_the_split_design_too(self):
        result = ext_split.run()
        mid = result.parameters[len(result.parameters) // 2]
        assert (
            result.series["split DM+DE(I)"].points[mid]
            <= result.series["split DM"].points[mid] + 1e-12
        )


class TestTraffic:
    def test_all_configs_present(self):
        results = ext_traffic.run()
        assert set(results) == {"direct-mapped", "dynamic-exclusion", "2-way"}

    def test_traffic_tracks_misses(self):
        results = ext_traffic.run()
        dm = results["direct-mapped"]
        de = results["dynamic-exclusion"]
        if de["miss_rate"] < dm["miss_rate"]:
            assert de["fetch_bytes_per_kiloref"] < dm["fetch_bytes_per_kiloref"]

    def test_nonnegative_traffic(self):
        for values in ext_traffic.run().values():
            assert values["fetch_bytes_per_kiloref"] >= 0
            assert values["write_bytes_per_kiloref"] >= 0
