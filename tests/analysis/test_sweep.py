"""Tests for the sweep helpers."""

import pytest

from repro.analysis.sweep import SweepResult, per_trace_rates, run_sweep
from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.geometry import CacheGeometry
from repro.trace.trace import Trace


def itrace(addrs, name=""):
    return Trace(addrs, [0] * len(addrs), name=name)


class TestSweepResult:
    def test_add_and_curve(self):
        result = SweepResult("size", [1, 2])
        result.add("a", 1, 0.5)
        result.add("a", 2, 0.25)
        assert result.curve("a") == [0.5, 0.25]

    def test_series_values_follow_parameter_order(self):
        result = SweepResult("size", [2, 1])
        result.add("a", 1, 0.1)
        result.add("a", 2, 0.2)
        assert result.curve("a") == [0.2, 0.1]


class TestRunSweep:
    def test_mean_across_traces(self):
        factories = {
            "dm": lambda size: DirectMappedCache(CacheGeometry(int(size), 4)),
        }
        # Trace A always misses in 8B cache; trace B has hits.
        trace_a = itrace([0, 8] * 10, "a")
        trace_b = itrace([0, 0] * 10, "b")
        result = run_sweep("size", [8], factories, [trace_a, trace_b])
        # a: 100% misses; b: 5% (one cold miss of 20) -> mean 52.5%.
        assert result.series["dm"].points[8] == pytest.approx((1.0 + 0.05) / 2)

    def test_every_factory_and_parameter_covered(self):
        factories = {
            "dm": lambda size: DirectMappedCache(CacheGeometry(int(size), 4)),
            "dm2": lambda size: DirectMappedCache(CacheGeometry(int(size) * 2, 4)),
        }
        result = run_sweep("size", [8, 16], factories, [itrace([0, 4])])
        assert set(result.series) == {"dm", "dm2"}
        assert len(result.curve("dm")) == 2

    def test_fresh_simulator_per_cell(self):
        created = []

        def factory(size):
            cache = DirectMappedCache(CacheGeometry(int(size), 4))
            created.append(cache)
            return cache

        run_sweep("size", [8], {"dm": factory}, [itrace([0]), itrace([4])])
        assert len(created) == 2

    def test_empty_traces_rejected(self):
        # An empty trace set used to record a plausible-looking 0.0
        # mean miss rate; it must fail loudly instead.
        with pytest.raises(ValueError, match="trace"):
            run_sweep(
                "size",
                [8],
                {"dm": lambda size: DirectMappedCache(CacheGeometry(int(size), 4))},
                [],
            )

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError, match="parameter"):
            run_sweep(
                "size",
                [],
                {"dm": lambda size: DirectMappedCache(CacheGeometry(int(size), 4))},
                [itrace([0])],
            )


class TestPerTraceRates:
    def test_keyed_by_trace_name(self):
        rates = per_trace_rates(
            lambda: DirectMappedCache(CacheGeometry(8, 4)),
            [itrace([0, 0], "x"), itrace([0, 8], "y")],
        )
        assert rates["x"] == pytest.approx(0.5)
        assert rates["y"] == pytest.approx(1.0)

    def test_unnamed_traces_get_indices(self):
        rates = per_trace_rates(
            lambda: DirectMappedCache(CacheGeometry(8, 4)),
            [itrace([0]), itrace([0])],
        )
        assert set(rates) == {"trace0", "trace1"}
