"""Tests for the SVG chart renderer."""

import pytest

from repro.analysis.svg import PALETTE, svg_line_chart, sweep_svg
from repro.analysis.sweep import SweepResult


def simple_chart(**kwargs):
    return svg_line_chart(
        {"a": [1.0, 3.0, 2.0], "b": [0.5, 0.5, 0.5]},
        ["x1", "x2", "x3"],
        title="Chart <Title>",
        y_label="rate",
        **kwargs,
    )


class TestSvgLineChart:
    def test_is_a_well_formed_svg_document(self):
        text = simple_chart()
        assert text.startswith("<svg ")
        assert text.endswith("</svg>")
        # Balanced tags for the elements we emit.
        assert text.count("<svg ") == 1

    def test_parses_as_xml(self):
        import xml.etree.ElementTree as ET

        root = ET.fromstring(simple_chart())
        assert root.tag.endswith("svg")

    def test_one_polyline_per_series(self):
        assert simple_chart().count("<polyline") == 2

    def test_title_is_escaped(self):
        text = simple_chart()
        assert "Chart &lt;Title&gt;" in text
        assert "<Title>" not in text

    def test_axis_labels_present(self):
        text = simple_chart()
        for label in ["x1", "x2", "x3", "rate"]:
            assert label in text

    def test_legend_lists_series(self):
        text = simple_chart()
        assert ">a</text>" in text
        assert ">b</text>" in text

    def test_colors_from_palette(self):
        text = simple_chart()
        assert PALETTE[0] in text
        assert PALETTE[1] in text

    def test_higher_values_have_smaller_y(self):
        import re

        text = svg_line_chart({"a": [0.0, 10.0]}, ["lo", "hi"])
        match = re.search(r'<polyline points="([\d.,\- ]+)"', text)
        assert match is not None
        points = [tuple(map(float, p.split(","))) for p in match.group(1).split()]
        assert points[1][1] < points[0][1]  # SVG y grows downward

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="points"):
            svg_line_chart({"a": [1.0]}, ["x", "y"])

    def test_empty_x_rejected(self):
        with pytest.raises(ValueError):
            svg_line_chart({}, [])

    def test_single_point_series(self):
        text = svg_line_chart({"a": [2.0]}, ["only"])
        assert "<polyline" in text

    def test_all_zero_values(self):
        text = svg_line_chart({"a": [0.0, 0.0]}, ["x", "y"])
        assert "<svg" in text

    def test_y_max_override_sets_top_tick(self):
        text = svg_line_chart({"a": [1.0]}, ["x"], y_max=100.0)
        assert "105" in text  # 5% headroom over the forced maximum


class TestSweepSvg:
    def _result(self):
        result = SweepResult("cache size", [1024, 2048])
        result.add("dm", 1024, 0.10)
        result.add("dm", 2048, 0.05)
        return result

    def test_sizes_become_labels(self):
        text = sweep_svg(self._result(), title="t")
        assert "1KB" in text and "2KB" in text

    def test_percent_scaling(self):
        text = sweep_svg(self._result(), percent=True)
        assert "miss rate (%)" in text

    def test_raw_values(self):
        text = sweep_svg(self._result(), percent=False)
        assert "miss rate (%)" not in text
