"""Tests for table formatting."""

from repro.analysis.report import format_percent, format_sweep, format_table, size_label
from repro.analysis.sweep import SweepResult


class TestFormatTable:
    def test_headers_and_rows_aligned(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert "name" in lines[0]
        assert "value" in lines[0]
        assert len({len(line) for line in lines}) == 1  # rectangular

    def test_floats_formatted(self):
        text = format_table(["x"], [[0.123456]])
        assert "0.123" in text

    def test_custom_float_format(self):
        text = format_table(["x"], [[0.5]], float_format="{:.1%}")
        assert "50.0%" in text

    def test_title_and_rule(self):
        text = format_table(["x"], [[1]], title="My Table")
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert lines[1] == "=" * len("My Table")

    def test_wide_cells_expand_columns(self):
        text = format_table(["x"], [["a-very-long-cell"]])
        assert "a-very-long-cell" in text


class TestLabels:
    def test_format_percent(self):
        assert format_percent(0.0234) == "2.3%"
        assert format_percent(0.0234, digits=2) == "2.34%"

    def test_size_label_kb(self):
        assert size_label(32 * 1024) == "32KB"

    def test_size_label_mb(self):
        assert size_label(2 * 1024 * 1024) == "2MB"

    def test_size_label_bytes(self):
        assert size_label(512) == "512B"


class TestFormatSweep:
    def _result(self):
        result = SweepResult("cache size", [1024, 2048])
        result.add("dm", 1024, 0.10)
        result.add("dm", 2048, 0.05)
        result.add("de", 1024, 0.07)
        result.add("de", 2048, 0.04)
        return result

    def test_rows_per_parameter(self):
        text = format_sweep(self._result())
        assert "1KB" in text
        assert "2KB" in text

    def test_columns_per_series(self):
        text = format_sweep(self._result())
        header = text.splitlines()[0]
        assert "dm" in header
        assert "de" in header

    def test_values_formatted(self):
        text = format_sweep(self._result(), value_format="{:.1%}")
        assert "10.0%" in text

    def test_param_format_override(self):
        text = format_sweep(self._result(), param_format="{}B")
        assert "1024B" in text
