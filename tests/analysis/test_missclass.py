"""Tests for 3C miss classification."""

import pytest

from repro.analysis.missclass import classify_misses
from repro.caches.geometry import CacheGeometry
from repro.trace.trace import Trace


def itrace(addrs):
    return Trace(addrs, [0] * len(addrs))


GEOMETRY = CacheGeometry(16, 4)  # 4 lines


class TestClassification:
    def test_pure_cold_trace(self):
        breakdown = classify_misses(itrace([0, 4, 8]), GEOMETRY)
        assert breakdown.compulsory == 3
        assert breakdown.capacity == 0
        assert breakdown.conflict == 0

    def test_conflict_misses(self):
        # 0 and 16 share a set in a 16B cache but fit a fully-assoc one.
        breakdown = classify_misses(itrace([0, 16, 0, 16]), GEOMETRY)
        assert breakdown.compulsory == 2
        assert breakdown.conflict == 2
        assert breakdown.capacity == 0

    def test_capacity_misses(self):
        # Cycle through 5 lines in a 4-line cache: LRU misses everything
        # after the cold start, and those are capacity misses.
        addrs = [0, 4, 8, 12, 16] * 3
        breakdown = classify_misses(itrace(addrs), GEOMETRY)
        assert breakdown.compulsory == 5
        assert breakdown.capacity > 0

    def test_totals_match_direct_mapped_misses(self):
        from repro.caches.direct_mapped import DirectMappedCache

        addrs = [0, 16, 4, 0, 20, 16, 8, 4] * 5
        trace = itrace(addrs)
        breakdown = classify_misses(trace, GEOMETRY)
        direct = DirectMappedCache(GEOMETRY).simulate(trace)
        assert breakdown.total == direct.misses

    def test_miss_rate(self):
        breakdown = classify_misses(itrace([0, 0, 0, 16]), GEOMETRY)
        assert breakdown.miss_rate == pytest.approx(0.5)

    def test_component_rate(self):
        breakdown = classify_misses(itrace([0, 16, 0]), GEOMETRY)
        assert breakdown.rate("compulsory") == pytest.approx(2 / 3)
        assert breakdown.rate("conflict") == pytest.approx(1 / 3)

    def test_requires_direct_mapped(self):
        with pytest.raises(ValueError):
            classify_misses(itrace([0]), CacheGeometry(16, 4, associativity=2))

    def test_empty_trace(self):
        breakdown = classify_misses(Trace.empty(), GEOMETRY)
        assert breakdown.total == 0
        assert breakdown.miss_rate == 0.0

    def test_exclusion_targets_conflict_misses(self):
        """Sanity link to the paper: on a conflict-heavy trace, the
        conflict component is what dynamic exclusion removes."""
        from repro.core.exclusion_cache import DynamicExclusionCache
        from repro.caches.direct_mapped import DirectMappedCache

        addrs = []
        for _ in range(50):
            addrs.extend([0, 16])
        trace = itrace(addrs)
        breakdown = classify_misses(trace, GEOMETRY)
        dm = DirectMappedCache(GEOMETRY).simulate(trace)
        de = DynamicExclusionCache(GEOMETRY).simulate(trace)
        saved = dm.misses - de.misses
        assert saved > 0
        assert saved <= breakdown.conflict
