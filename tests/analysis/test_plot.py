"""Tests for the ASCII chart renderer."""

import pytest

from repro.analysis.plot import ascii_chart, sweep_chart
from repro.analysis.sweep import SweepResult


class TestAsciiChart:
    def test_contains_axis_and_legend(self):
        text = ascii_chart({"a": [1.0, 2.0]}, ["x1", "x2"], title="T")
        assert text.startswith("T")
        assert "legend:" in text
        assert "x1" in text and "x2" in text

    def test_marker_per_series(self):
        text = ascii_chart({"a": [1.0], "b": [2.0]}, ["x"])
        assert "* a" in text
        assert "+ b" in text

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="points"):
            ascii_chart({"a": [1.0]}, ["x", "y"])

    def test_peak_is_higher_on_grid(self):
        text = ascii_chart({"a": [0.0, 10.0, 0.0]}, ["l", "m", "r"], height=8)
        lines = [ln for ln in text.splitlines() if "|" in ln]
        # The middle point must appear above the side points.
        rows_with_marker = [i for i, ln in enumerate(lines) if "*" in ln]
        top_row = min(rows_with_marker)
        assert lines[top_row].index("*") != lines[max(rows_with_marker)].index("*")

    def test_overlap_marker(self):
        text = ascii_chart({"a": [5.0], "b": [5.0]}, ["x"], height=6)
        assert "=" in text

    def test_empty_series_returns_title(self):
        assert ascii_chart({}, [], title="Empty") == "Empty"

    def test_all_zero_values_no_crash(self):
        text = ascii_chart({"a": [0.0, 0.0]}, ["x", "y"])
        assert "legend" in text

    def test_y_max_override(self):
        text = ascii_chart({"a": [1.0]}, ["x"], y_max=100.0, y_format="{:.0f}")
        assert "100" in text


class TestSweepChart:
    def test_renders_from_sweep_result(self):
        result = SweepResult("cache size", [1024, 2048])
        result.add("dm", 1024, 0.10)
        result.add("dm", 2048, 0.05)
        text = sweep_chart(result, title="sweeps")
        assert "1KB" in text
        assert "dm" in text

    def test_percent_scaling(self):
        result = SweepResult("cache size", [1024])
        result.add("dm", 1024, 0.5)
        text = sweep_chart(result, percent=True, title="t")
        assert "50.0" in text
