"""Tests for the AMAT timing model."""

import pytest

from repro.analysis.timing import (
    DEFAULT_MODELS,
    TimingModel,
    amat_comparison,
    breakeven_hit_time,
)


class TestTimingModel:
    def test_amat_formula(self):
        model = TimingModel(hit_time=1.0, miss_penalty=20.0)
        assert model.amat(0.05) == pytest.approx(2.0)

    def test_zero_miss_rate(self):
        model = TimingModel(1.0, 20.0)
        assert model.amat(0.0) == 1.0

    def test_full_miss_rate(self):
        model = TimingModel(1.0, 20.0)
        assert model.amat(1.0) == 21.0

    def test_miss_rate_out_of_range(self):
        with pytest.raises(ValueError):
            TimingModel(1.0, 20.0).amat(1.5)

    def test_hit_time_must_be_positive(self):
        with pytest.raises(ValueError):
            TimingModel(0.0, 20.0)

    def test_miss_penalty_non_negative(self):
        with pytest.raises(ValueError):
            TimingModel(1.0, -1.0)


class TestComparison:
    def test_defaults_cover_three_configs(self):
        amats = amat_comparison(
            {"direct-mapped": 0.06, "dynamic-exclusion": 0.04, "2-way": 0.045}
        )
        assert set(amats) == {"direct-mapped", "dynamic-exclusion", "2-way"}

    def test_missing_model_rejected(self):
        with pytest.raises(ValueError, match="no timing model"):
            amat_comparison({"mystery": 0.1})

    def test_custom_models(self):
        models = {"x": TimingModel(2.0, 10.0)}
        assert amat_comparison({"x": 0.1}, models)["x"] == pytest.approx(3.0)

    def test_paper_argument_de_beats_two_way(self):
        """The paper's pitch: DE keeps the direct-mapped hit time, so a
        modest miss-rate win beats 2-way associativity's better miss
        rate once the way-mux penalty is charged."""
        amats = amat_comparison(
            {"direct-mapped": 0.060, "dynamic-exclusion": 0.042, "2-way": 0.040}
        )
        assert amats["dynamic-exclusion"] < amats["2-way"]
        assert amats["dynamic-exclusion"] < amats["direct-mapped"]

    def test_exclusion_hit_time_matches_direct_mapped(self):
        assert (
            DEFAULT_MODELS["dynamic-exclusion"].hit_time
            == DEFAULT_MODELS["direct-mapped"].hit_time
        )


class TestBreakeven:
    def test_breakeven_formula(self):
        baseline = TimingModel(1.0, 20.0)
        # Baseline AMAT at 6% = 2.2; alternative at 4% needs
        # hit_time <= 2.2 - 0.8 = 1.4 to win.
        value = breakeven_hit_time(baseline, 0.06, 0.04)
        assert value == pytest.approx(1.4)

    def test_equal_miss_rates_give_equal_hit_time(self):
        baseline = TimingModel(1.0, 20.0)
        assert breakeven_hit_time(baseline, 0.05, 0.05) == pytest.approx(1.0)

    def test_custom_penalty(self):
        baseline = TimingModel(1.0, 20.0)
        value = breakeven_hit_time(baseline, 0.06, 0.04, miss_penalty=10.0)
        assert value == pytest.approx(2.2 - 0.4)
