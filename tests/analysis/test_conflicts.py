"""Tests for the conflict profiler."""

import pytest

from repro.analysis.conflicts import format_profile, profile_conflicts
from repro.caches.geometry import CacheGeometry
from repro.trace.trace import Trace
from repro.workloads.patterns import between_loops, within_loop

GEOMETRY = CacheGeometry(64, 4)


def itrace(addrs):
    return Trace(addrs, [0] * len(addrs))


class TestProfile:
    def test_no_conflicts(self):
        profile = profile_conflicts(itrace([0, 4, 0, 4]), GEOMETRY)
        assert profile.misses == 2
        assert profile.ping_pongs == 0
        assert profile.ping_pong_fraction == 0.0

    def test_pure_ping_pong(self):
        # (a b)^10 with a, b conflicting: after the first two misses,
        # every miss is a ping-pong.
        profile = profile_conflicts(itrace([0, 64] * 10), GEOMETRY)
        assert profile.misses == 20
        assert profile.ping_pongs == 18

    def test_within_loop_pattern_flags_hot_pair(self):
        geometry = CacheGeometry(32 * 1024, 4)
        profile = profile_conflicts(within_loop(geometry, trips=10), geometry)
        report = profile.top_sets(1)[0]
        assert report.hottest_pair is not None
        a, b, count = report.hottest_pair
        assert count >= 8
        assert {a, b} == {0, 8192}  # line addresses one cache apart

    def test_between_loops_pattern_has_no_ping_pong(self):
        """Phase alternation with long runs is not ping-pong (each
        eviction pair occurs with 9 hits between — not back-to-back)."""
        geometry = CacheGeometry(32 * 1024, 4)
        profile = profile_conflicts(between_loops(geometry), geometry)
        assert profile.ping_pong_fraction > 0.5  # alternating pair a/b
        # Actually (a^10 b^10): evictions alternate a<->b back to back
        # at phase boundaries, so these *are* ping-pongs.

    def test_three_way_rotation_is_not_ping_pong(self):
        # a evicts c, b evicts a, c evicts b: never the same pair twice
        # in a row.
        profile = profile_conflicts(itrace([0, 64, 128] * 10), GEOMETRY)
        assert profile.ping_pongs == 0

    def test_misses_match_direct_mapped_simulation(self):
        from repro.caches.direct_mapped import DirectMappedCache
        import random

        rng = random.Random(9)
        trace = itrace([rng.randrange(64) * 4 for _ in range(500)])
        profile = profile_conflicts(trace, GEOMETRY)
        simulated = DirectMappedCache(GEOMETRY).simulate(trace)
        assert profile.misses == simulated.misses

    def test_requires_direct_mapped(self):
        with pytest.raises(ValueError):
            profile_conflicts(itrace([0]), CacheGeometry(64, 4, associativity=2))

    def test_top_sets_ranked_by_ping_pongs(self):
        # Set 0 ping-pongs; set 1 only misses once.
        addrs = [0, 64] * 10 + [4]
        profile = profile_conflicts(itrace(addrs), GEOMETRY)
        top = profile.top_sets(2)
        assert top[0].set_index == 0
        assert top[0].ping_pongs > top[1].ping_pongs


class TestFormat:
    def test_report_contains_summary_and_pairs(self):
        profile = profile_conflicts(itrace([0, 64] * 10), GEOMETRY)
        text = format_profile(profile)
        assert "ping-pong fraction" in text
        assert "0x0 <-> 0x10" in text

    def test_handles_sets_without_pairs(self):
        profile = profile_conflicts(itrace([0, 4, 8]), GEOMETRY)
        text = format_profile(profile)
        assert "-" in text


class TestWorkloadValidation:
    def test_spec_workloads_are_ping_pong_rich(self):
        """The synthetic benchmarks must contain substantial two-way
        alternation at the reference size — that is what makes them
        paper-faithful (see docs/workloads.md)."""
        from repro.workloads.registry import instruction_trace

        geometry = CacheGeometry(32 * 1024, 4)
        trace = instruction_trace("gcc", 60_000)
        profile = profile_conflicts(trace, geometry)
        assert profile.ping_pong_fraction > 0.25
