"""Tests for warm-up analysis."""

import pytest

from repro.analysis.warmup import (
    ColdWarmSplit,
    WarmupCurve,
    cold_warm_split,
    steady_state_reduction,
    windowed_miss_rates,
)
from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.geometry import CacheGeometry
from repro.core.exclusion_cache import DynamicExclusionCache
from repro.core.hitlast import IdealHitLastStore
from repro.trace.trace import Trace

GEOMETRY = CacheGeometry(64, 4)


def itrace(addrs):
    return Trace(addrs, [0] * len(addrs))


def dm_factory():
    return DirectMappedCache(GEOMETRY)


class TestWindowedMissRates:
    def test_loops_warm_up(self):
        # First pass over 8 lines misses; later passes hit entirely.
        trace = itrace(list(range(0, 32, 4)) * 10)
        curve = windowed_miss_rates(dm_factory, trace, window=8)
        assert curve.miss_rates[0] == 1.0
        assert curve.miss_rates[-1] == 0.0

    def test_steady_rate_uses_tail(self):
        trace = itrace(list(range(0, 32, 4)) * 10)
        curve = windowed_miss_rates(dm_factory, trace, window=8)
        assert curve.steady_rate == 0.0
        assert curve.cold_rate == 1.0

    def test_warmup_windows(self):
        trace = itrace(list(range(0, 32, 4)) * 10)
        curve = windowed_miss_rates(dm_factory, trace, window=8)
        assert curve.warmup_windows == 1

    def test_partial_final_window(self):
        trace = itrace([0, 4, 8])
        curve = windowed_miss_rates(dm_factory, trace, window=2)
        assert len(curve.miss_rates) == 2
        assert curve.miss_rates[1] == 1.0  # single cold ref

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            windowed_miss_rates(dm_factory, itrace([0]), window=0)

    def test_empty_trace(self):
        curve = windowed_miss_rates(dm_factory, Trace.empty(), window=4)
        assert curve.miss_rates == ()
        assert curve.steady_rate == 0.0


class TestColdWarmSplit:
    def test_split_counts_add_up(self):
        trace = itrace([0, 64] * 20)
        split = cold_warm_split(dm_factory, trace, boundary=10)
        assert split.cold.accesses == 10
        assert split.warm.accesses == 30
        total = DirectMappedCache(GEOMETRY).simulate(trace)
        assert split.cold.misses + split.warm.misses == total.misses

    def test_boundary_zero(self):
        split = cold_warm_split(dm_factory, itrace([0, 0]), boundary=0)
        assert split.cold.accesses == 0
        assert split.warm.accesses == 2

    def test_negative_boundary_rejected(self):
        with pytest.raises(ValueError):
            cold_warm_split(dm_factory, itrace([0]), boundary=-1)

    def test_warm_stats_consistent(self):
        trace = itrace([0, 64, 4, 68] * 25)
        split = cold_warm_split(dm_factory, trace, boundary=17)
        split.warm.check()


class TestSteadyStateReduction:
    def test_training_cost_isolated(self):
        """On the within-loop pattern, DE's benefit is concentrated in
        the warm half (the cold half pays the training misses)."""
        a, b = 0, 64
        trace = itrace([a, b] * 50)

        def de_factory():
            return DynamicExclusionCache(
                GEOMETRY, store=IdealHitLastStore(default=True)
            )

        cold, warm = steady_state_reduction(dm_factory, de_factory, trace)
        assert warm == pytest.approx(50.0, abs=5.0)
        assert warm >= cold

    def test_default_boundary_is_half(self):
        trace = itrace([0] * 10)
        cold, warm = steady_state_reduction(dm_factory, dm_factory, trace)
        assert cold == 0.0 and warm == 0.0


class TestZeroBaselineGuards:
    """steady_state_reduction must not mask a regression behind a
    zero-miss baseline half (the percent_reduction zero-baseline bug)."""

    def test_zero_baseline_warm_regression_raises(self):
        # Baseline: 128B cache, 0 and 64 map to different lines -> zero
        # warm misses.  "Improved": 64B cache, the same pair conflicts
        # and thrashes -> a regression that 0.0 must not hide.
        trace = itrace([0, 64] * 20)

        def big_factory():
            return DirectMappedCache(CacheGeometry(128, 4))

        def small_factory():
            return DirectMappedCache(CacheGeometry(64, 4))

        with pytest.raises(ValueError, match="0.0 baseline.*regression"):
            steady_state_reduction(big_factory, small_factory, trace)

    def test_zero_to_zero_half_reports_zero(self):
        trace = itrace([0, 64] * 20)

        def big_factory():
            return DirectMappedCache(CacheGeometry(128, 4))

        cold, warm = steady_state_reduction(big_factory, big_factory, trace)
        assert cold == 0.0 and warm == 0.0


class TestWarmupWindowsZeroSteady:
    def test_float_dust_tail_counts_as_warmed(self):
        # Steady rate 0.0: the old purely-relative threshold reported
        # "never warmed" for a tail within float dust of zero.
        curve = WarmupCurve(window=1, miss_rates=(1.0, 5e-13, 0.0, 0.0))
        assert curve.warmup_windows == 1

    def test_exact_zero_tail(self):
        curve = WarmupCurve(window=1, miss_rates=(1.0, 0.5, 0.0, 0.0))
        assert curve.warmup_windows == 2

    def test_empty_curve_reports_zero(self):
        curve = WarmupCurve(window=1, miss_rates=())
        assert curve.warmup_windows == 0
