"""Tests for result serialisation."""

import io

import pytest

from repro.analysis.serialize import (
    dumps,
    load,
    loads,
    save,
    stats_from_dict,
    sweep_from_dict,
)
from repro.analysis.sweep import SweepResult
from repro.caches.stats import CacheStats
from repro.hierarchy.two_level import Strategy, TwoLevelResult


def sample_stats():
    return CacheStats(accesses=10, hits=6, misses=4, bypasses=1,
                      evictions=2, buffer_hits=1, cold_misses=2)


def sample_sweep():
    result = SweepResult("cache size", [1024, 2048])
    result.add("dm", 1024, 0.1)
    result.add("dm", 2048, 0.05)
    result.add("de", 1024, 0.08)
    result.add("de", 2048, 0.04)
    return result


class TestRoundTrips:
    def test_cache_stats(self):
        restored = loads(dumps(sample_stats()))
        assert restored == sample_stats()

    def test_sweep(self):
        restored = loads(dumps(sample_sweep()))
        assert restored.parameter_name == "cache size"
        assert restored.curve("dm") == [0.1, 0.05]
        assert restored.curve("de") == [0.08, 0.04]

    def test_two_level(self):
        result = TwoLevelResult(
            strategy=Strategy.ASSUME_MISS,
            l1=sample_stats(),
            l2=CacheStats(accesses=4, hits=1, misses=3),
        )
        restored = loads(dumps(result))
        assert restored.strategy is Strategy.ASSUME_MISS
        assert restored.l1 == sample_stats()
        assert restored.l2.misses == 3

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "stats.json"
        save(sample_stats(), path)
        assert load(path) == sample_stats()

    def test_file_object_round_trip(self):
        buffer = io.StringIO()
        save(sample_sweep(), buffer)
        buffer.seek(0)
        restored = load(buffer)
        assert restored.curve("dm") == [0.1, 0.05]


class TestValidation:
    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            dumps({"not": "a result"})

    def test_non_document_rejected(self):
        with pytest.raises(ValueError, match="not a repro result"):
            loads("[1, 2, 3]")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown result kind"):
            loads('{"kind": "martian"}')

    def test_kind_mismatch_rejected(self):
        with pytest.raises(ValueError, match="expected"):
            stats_from_dict({"kind": "sweep"})

    def test_future_version_rejected(self):
        document = dumps(sample_stats()).replace('"version": 1', '"version": 99')
        with pytest.raises(ValueError, match="newer"):
            loads(document)

    def test_inconsistent_stats_rejected(self):
        document = dumps(sample_stats()).replace('"hits": 6', '"hits": 9')
        with pytest.raises(AssertionError):
            loads(document)

    def test_ragged_sweep_rejected(self):
        with pytest.raises(ValueError, match="values"):
            sweep_from_dict(
                {
                    "kind": "sweep",
                    "version": 1,
                    "parameter_name": "x",
                    "parameters": [1, 2],
                    "series": {"dm": [0.1]},
                }
            )

    def test_missing_optional_counters_default_to_zero(self):
        document = (
            '{"kind": "cache-stats", "version": 1, '
            '"accesses": 2, "hits": 1, "misses": 1}'
        )
        stats = loads(document)
        assert stats.bypasses == 0


class TestParameterStability:
    def test_tuple_parameters_round_trip_as_tuples(self):
        result = SweepResult("config", [(1024, 4), (2048, 8)])
        result.add("dm", (1024, 4), 0.1)
        result.add("dm", (2048, 8), 0.05)
        restored = loads(dumps(result))
        assert restored.parameters == [(1024, 4), (2048, 8)]
        # Series.points lookups by the original tuple still hit.
        assert restored.curve("dm") == [0.1, 0.05]
        assert restored.series["dm"].points[(1024, 4)] == 0.1

    def test_nested_tuple_parameters_round_trip(self):
        parameter = ("l1", (1024, 4))
        result = SweepResult("config", [parameter])
        result.add("dm", parameter, 0.2)
        restored = loads(dumps(result))
        assert restored.parameters == [parameter]
        assert restored.series["dm"].points[parameter] == 0.2

    def test_list_parameter_rejected(self):
        result = SweepResult("config", [[1024, 4]])
        result.add("dm", (1024, 4), 0.1)
        with pytest.raises(TypeError, match="JSON round trip"):
            dumps(result)

    def test_object_parameter_rejected(self):
        geometry = object()
        result = SweepResult("config", [geometry])
        result.add("dm", geometry, 0.1)
        with pytest.raises(TypeError, match="JSON round trip"):
            dumps(result)

    def test_non_finite_float_parameter_rejected(self):
        result = SweepResult("size", [float("nan")])
        result.add("dm", float("nan"), 0.1)
        with pytest.raises(TypeError, match="non-finite"):
            dumps(result)


class TestPartialSweep:
    def test_missing_point_names_series_and_parameter(self):
        result = sample_sweep()
        del result.series["de"].points[2048]
        with pytest.raises(ValueError, match=r"partial sweep.*'de'.*2048"):
            dumps(result)

    def test_message_counts_points(self):
        result = sample_sweep()
        del result.series["de"].points[2048]
        with pytest.raises(ValueError, match="1 of 2 points present"):
            dumps(result)

    def test_complete_sweep_still_serialises(self):
        assert loads(dumps(sample_sweep())).curve("de") == [0.08, 0.04]
