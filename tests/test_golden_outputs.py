"""Golden-output tests: formats that must stay stable.

These pin the exact text of the cheap, deterministic reports so
accidental format regressions (column drift, renamed labels) are
caught.  Only fully deterministic content is pinned.
"""

from repro.analysis.report import format_table
from repro.experiments import sec3_patterns


class TestSec3Golden:
    def test_exact_pattern_rows(self):
        rows = sec3_patterns.run()
        observed = [
            (row.name, row.refs, row.dm_misses, row.de_misses, row.opt_misses)
            for row in rows
        ]
        assert observed == [
            ("between loops (a^10 b^10)^10", 200, 20, 20, 20),
            ("loop level (a^10 b)^10", 110, 20, 12, 11),
            ("within loop (a b)^10", 20, 20, 12, 11),
            ("three-way (a b c)^10", 30, 30, 30, 21),
        ]

    def test_report_text_snapshot(self):
        text = sec3_patterns.report()
        assert "between loops (a^10 b^10)^10" in text
        assert "20 (paper 20)" in text
        assert "m_DM" in text


class TestTableFormatGolden:
    def test_exact_rendering(self):
        text = format_table(
            ["name", "value"],
            [["a", 1], ["long-name", 0.5]],
            title="T",
        )
        expected = (
            "T\n"
            "=\n"
            "     name  value\n"
            "---------  -----\n"
            "        a      1\n"
            "long-name  0.500"
        )
        assert text == expected


class TestCostModelGolden:
    def test_figure13_bit_counts(self):
        """The exact bit arithmetic behind the Figure 13 table."""
        from repro.caches.geometry import CacheGeometry
        from repro.core.cost import direct_mapped_bits, exclusion_overhead_bits

        geometry = CacheGeometry(8 * 1024, 16)
        assert direct_mapped_bits(geometry) == 75776
        assert exclusion_overhead_bits(geometry) == 2717
        overhead = exclusion_overhead_bits(geometry) / direct_mapped_bits(geometry)
        assert round(100 * overhead, 1) == 3.6  # paper: 3.4% (31-bit tags)
