"""Differential tests: the fast engine must match the reference exactly.

Every supported configuration is checked for field-for-field
:class:`~repro.caches.stats.CacheStats` equality on all ten SPEC
analogue traces and on seeded random traces, across three geometries
(1KB / 32KB / 256KB at b=4) and — for the associativity-capable models
(Belady, LRU) — associativities 1, 2, and 4; unsupported
configurations must fall back to the reference engine transparently.
"""

import numpy as np
import pytest

from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.geometry import CacheGeometry
from repro.caches.optimal import (
    OptimalCache,
    OptimalDirectMappedCache,
    OptimalLastLineCache,
)
from repro.caches.set_associative import SetAssociativeCache
from repro.caches.victim import VictimCache
from repro.core.exclusion_cache import DynamicExclusionCache
from repro.core.hitlast import HashedHitLastStore, IdealHitLastStore
from repro.perf import engine
from repro.trace.trace import Trace
from repro.workloads.registry import benchmark_names, instruction_trace

GEOMETRIES = [CacheGeometry(kb * 1024, 4) for kb in (1, 32, 256)]
ASSOCIATIVITIES = [1, 2, 4]
TRACE_REFS = 20_000

_SPEC_TRACES = {}


def spec_trace(name):
    if name not in _SPEC_TRACES:
        _SPEC_TRACES[name] = instruction_trace(name, TRACE_REFS)
    return _SPEC_TRACES[name]


def geometry_id(geometry):
    return f"{geometry.size // 1024}KB"


@pytest.mark.parametrize("geometry", GEOMETRIES, ids=geometry_id)
@pytest.mark.parametrize("name", benchmark_names())
class TestSpecEquivalence:
    def test_direct_mapped(self, name, geometry):
        trace = spec_trace(name)
        reference = DirectMappedCache(geometry).simulate(trace)
        fast = engine.simulate(DirectMappedCache(geometry), trace, engine="fast")
        assert fast == reference

    def test_dynamic_exclusion(self, name, geometry):
        trace = spec_trace(name)
        reference = DynamicExclusionCache(
            geometry, store=IdealHitLastStore(default=True)
        ).simulate(trace)
        fast = engine.simulate(
            DynamicExclusionCache(geometry, store=IdealHitLastStore(default=True)),
            trace,
            engine="fast",
        )
        assert fast == reference

    @pytest.mark.parametrize("ways", ASSOCIATIVITIES)
    def test_belady(self, name, geometry, ways):
        trace = spec_trace(name)
        shaped = CacheGeometry(geometry.size, geometry.line_size, associativity=ways)
        reference = OptimalCache(shaped).simulate(trace)
        fast = engine.simulate(OptimalCache(shaped), trace, engine="fast")
        assert fast == reference

    def test_optimal_direct_mapped(self, name, geometry):
        trace = spec_trace(name)
        reference = OptimalDirectMappedCache(geometry).simulate(trace)
        fast = engine.simulate(
            OptimalDirectMappedCache(geometry), trace, engine="fast"
        )
        assert fast == reference

    def test_optimal_last_line(self, name, geometry):
        trace = spec_trace(name)
        shaped = CacheGeometry(geometry.size, 16)
        reference = OptimalLastLineCache(shaped).simulate(trace)
        fast = engine.simulate(OptimalLastLineCache(shaped), trace, engine="fast")
        assert fast == reference

    @pytest.mark.parametrize("ways", ASSOCIATIVITIES)
    def test_lru(self, name, geometry, ways):
        trace = spec_trace(name)
        shaped = CacheGeometry(geometry.size, geometry.line_size, associativity=ways)
        reference = SetAssociativeCache(shaped).simulate(trace)
        fast = engine.simulate(SetAssociativeCache(shaped), trace, engine="fast")
        assert fast == reference


@pytest.mark.parametrize("geometry", GEOMETRIES, ids=geometry_id)
@pytest.mark.parametrize("seed", [0, 1, 2])
class TestRandomEquivalence:
    def _trace(self, seed):
        rng = np.random.default_rng(seed)
        n = 5_000
        # Mix of local loops and far jumps so all three geometries see
        # hits, conflicts, and cold misses.
        addrs = (rng.integers(0, 1 << 16, size=n) * 4).tolist()
        return Trace(addrs, [0] * n)

    def test_direct_mapped(self, seed, geometry):
        trace = self._trace(seed)
        reference = DirectMappedCache(geometry).simulate(trace)
        assert (
            engine.simulate(DirectMappedCache(geometry), trace, engine="fast")
            == reference
        )

    @pytest.mark.parametrize("default", [True, False])
    def test_dynamic_exclusion(self, seed, geometry, default):
        trace = self._trace(seed)
        reference = DynamicExclusionCache(
            geometry, store=IdealHitLastStore(default=default)
        ).simulate(trace)
        fast = engine.simulate(
            DynamicExclusionCache(geometry, store=IdealHitLastStore(default=default)),
            trace,
            engine="fast",
        )
        assert fast == reference

    @pytest.mark.parametrize("ways", ASSOCIATIVITIES)
    def test_belady(self, seed, geometry, ways):
        trace = self._trace(seed)
        shaped = CacheGeometry(geometry.size, geometry.line_size, associativity=ways)
        reference = OptimalCache(shaped).simulate(trace)
        assert engine.simulate(OptimalCache(shaped), trace, engine="fast") == reference

    def test_optimal_last_line(self, seed, geometry):
        trace = self._trace(seed)
        shaped = CacheGeometry(geometry.size, 16)
        reference = OptimalLastLineCache(shaped).simulate(trace)
        assert (
            engine.simulate(OptimalLastLineCache(shaped), trace, engine="fast")
            == reference
        )

    @pytest.mark.parametrize("ways", ASSOCIATIVITIES)
    def test_lru(self, seed, geometry, ways):
        trace = self._trace(seed)
        shaped = CacheGeometry(geometry.size, geometry.line_size, associativity=ways)
        reference = SetAssociativeCache(shaped).simulate(trace)
        assert (
            engine.simulate(SetAssociativeCache(shaped), trace, engine="fast")
            == reference
        )


class TestKernelRegistry:
    def test_supported_configurations(self):
        geometry = CacheGeometry(1024, 4)
        assert engine.has_kernel(DirectMappedCache(geometry))
        assert engine.has_kernel(DynamicExclusionCache(geometry))
        assert engine.has_kernel(
            DynamicExclusionCache(geometry, store=IdealHitLastStore(default=False))
        )
        assert engine.has_kernel(OptimalCache(geometry))
        assert engine.has_kernel(OptimalDirectMappedCache(geometry))
        assert engine.has_kernel(OptimalLastLineCache(CacheGeometry(1024, 16)))
        assert engine.has_kernel(
            OptimalCache(CacheGeometry(1024, 4, associativity=4))
        )
        assert engine.has_kernel(SetAssociativeCache(geometry))
        assert engine.has_kernel(
            SetAssociativeCache(CacheGeometry(1024, 4, associativity=2))
        )

    def test_registered_kernel_types(self):
        assert set(engine.registered_kernel_types()) == {
            DirectMappedCache,
            DynamicExclusionCache,
            OptimalCache,
            OptimalDirectMappedCache,
            OptimalLastLineCache,
            SetAssociativeCache,
        }

    def test_multi_sticky_falls_back(self):
        cache = DynamicExclusionCache(CacheGeometry(1024, 4), sticky_levels=2)
        assert not engine.has_kernel(cache)
        trace = Trace([0, 1024, 0, 1024] * 50, [0] * 200)
        fast = engine.simulate(cache, trace, engine="fast")
        reference = DynamicExclusionCache(
            CacheGeometry(1024, 4), sticky_levels=2
        ).simulate(trace)
        assert fast == reference
        # The fallback ran the reference path, which accumulates into
        # the model itself.
        assert cache.stats.accesses == 200

    def test_victim_cache_falls_back(self):
        cache = VictimCache(CacheGeometry(1024, 4), entries=4)
        assert not engine.has_kernel(cache)
        trace = Trace([0, 1024] * 20, [0] * 40)
        fast = engine.simulate(cache, trace, engine="fast")
        reference = VictimCache(CacheGeometry(1024, 4), entries=4).simulate(trace)
        assert fast == reference

    def test_non_lru_set_associative_falls_back(self):
        geometry = CacheGeometry(1024, 4, associativity=2)
        for policy in ("fifo", "random"):
            cache = SetAssociativeCache(geometry, policy=policy)
            assert not engine.has_kernel(cache)
            trace = Trace([0, 1024, 2048, 0] * 10, [0] * 40)
            fast = engine.simulate(cache, trace, engine="fast")
            reference = SetAssociativeCache(geometry, policy=policy).simulate(trace)
            assert fast == reference

    def test_warm_lru_falls_back(self):
        cache = SetAssociativeCache(CacheGeometry(1024, 4, associativity=2))
        cache.access(0)
        assert not engine.has_kernel(cache)

    def test_no_allocate_direct_mapped_falls_back(self):
        assert not engine.has_kernel(
            DirectMappedCache(CacheGeometry(1024, 4), allocate_on_miss=False)
        )

    def test_hashed_store_falls_back(self):
        assert not engine.has_kernel(
            DynamicExclusionCache(
                CacheGeometry(1024, 4), store=HashedHitLastStore(256)
            )
        )

    def test_warm_cache_falls_back(self):
        cache = DirectMappedCache(CacheGeometry(1024, 4))
        cache.access(0)
        assert not engine.has_kernel(cache)

    def test_prefilled_store_falls_back(self):
        store = IdealHitLastStore()
        store.update(7, False)
        assert not engine.has_kernel(
            DynamicExclusionCache(CacheGeometry(1024, 4), store=store)
        )

    def test_fast_path_does_not_mutate_the_model(self):
        cache = DirectMappedCache(CacheGeometry(1024, 4))
        trace = Trace([0, 4, 8], [0] * 3)
        engine.simulate(cache, trace, engine="fast")
        assert cache.stats.accesses == 0
        assert not cache.resident_lines()


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            engine.simulate(
                DirectMappedCache(CacheGeometry(64, 4)), Trace.empty(), engine="warp"
            )
        with pytest.raises(ValueError):
            engine.set_default_engine("warp")

    def test_default_engine_roundtrip(self):
        assert engine.resolve_engine(None) == engine.default_engine()
        previous = engine.default_engine()
        try:
            engine.set_default_engine("fast")
            assert engine.resolve_engine(None) == "fast"
        finally:
            engine.set_default_engine(previous)

    def test_reference_engine_ignores_kernels(self):
        cache = DirectMappedCache(CacheGeometry(64, 4))
        trace = Trace([0, 4, 8], [0] * 3)
        stats = engine.simulate(cache, trace, engine="reference")
        assert stats is cache.stats
        assert cache.stats.accesses == 3
