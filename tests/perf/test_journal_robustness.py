"""Robustness tests for the sweep journal and its non-finite hardening.

The basics (torn tails, unknown kinds, future versions within one file)
live in test_resilient.py; this module covers the cross-file and
adversarial cases the result store leans on: duplicate keys across many
journal files, non-finite metric rejection at record time, and
non-finite payload rejection at content-key time.
"""

import json
import math
import threading

import pytest

from repro.perf.journal import (
    JOURNAL_FILENAME,
    JOURNAL_VERSION,
    SweepJournal,
    content_key,
)
from repro.store import open_store


class TestLastWins:
    def test_duplicate_key_last_line_wins_in_one_journal(self, tmp_path):
        journal = SweepJournal(tmp_path)
        journal.record("k1", {"label": "dm"}, 0.1, 0.0)
        journal.record("k1", {"label": "dm"}, 0.9, 0.0)
        reloaded = SweepJournal(tmp_path)
        assert SweepJournal.entry_metrics(reloaded.get("k1")) == {"miss_rate": 0.9}

    def test_duplicate_key_across_files_later_source_wins(self, tmp_path):
        SweepJournal(tmp_path / "old").record("k1", {}, 0.1, 0.0)
        SweepJournal(tmp_path / "new").record("k1", {}, 0.9, 0.0)
        store = open_store(
            tmp_path / "store", [tmp_path / "old", tmp_path / "new"]
        )
        assert store.metrics("k1") == {"miss_rate": 0.9}
        assert store.stats().duplicates == 1


class TestCorruptionIsolation:
    def test_corrupted_and_future_lines_do_not_poison_neighbours(self, tmp_path):
        journal = SweepJournal(tmp_path)
        journal.record("before", {}, 0.1, 0.0)
        with journal.path.open("a", encoding="utf-8") as handle:
            handle.write("{corrupted json\n")
            handle.write(
                json.dumps(
                    {
                        "kind": "sweep-cell",
                        "version": JOURNAL_VERSION + 1,
                        "key": "future",
                        "miss_rate": 0.5,
                    }
                )
                + "\n"
            )
        journal.record("after", {}, 0.2, 0.0)

        reloaded = SweepJournal(tmp_path)
        assert reloaded.get("before") is not None
        assert reloaded.get("after") is not None
        assert reloaded.get("future") is None

        store = open_store(tmp_path / "store", [tmp_path])
        assert sorted(store.keys()) == ["after", "before"]
        assert store.stats().skipped == 2


class TestNonFiniteRejection:
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_record_refuses_non_finite_metrics(self, tmp_path, bad):
        journal = SweepJournal(tmp_path)
        with pytest.raises(ValueError, match="non-finite"):
            journal.record("bad", {"label": "dm"}, bad, 0.0)
        with pytest.raises(ValueError, match="non-finite"):
            journal.record("bad", {"label": "dm"}, {"miss_rate": 0.1, "ipc": bad}, 0.0)
        # nothing was appended: the journal file stays fully parseable
        assert journal.get("bad") is None
        if journal.path.exists():
            for line in journal.path.read_text().splitlines():
                json.loads(line)

    def test_record_many_is_atomic_per_batch_validation(self, tmp_path):
        """Validation happens before any line of the batch is written."""
        journal = SweepJournal(tmp_path)
        with pytest.raises(ValueError, match="non-finite"):
            journal.record_many(
                [
                    ("good", {}, 0.1, 0.0),
                    ("bad", {}, float("nan"), 0.0),
                ]
            )
        assert journal.get("good") is None
        assert not journal.path.exists() or not journal.path.read_text()

    @pytest.mark.parametrize("bad", ["0.5", None, [0.5], {"v": 0.5}, True])
    def test_record_refuses_non_numeric_metrics(self, tmp_path, bad):
        """Regression: a string (or other non-numeric) metric used to
        crash ``math.isfinite`` with a raw TypeError; the journal now
        raises its own descriptive ValueError before writing anything."""
        journal = SweepJournal(tmp_path)
        with pytest.raises(ValueError, match="is not a number"):
            journal.record_many(
                [("bad", {"label": "dm"}, {"miss_rate": 0.1, "ipc": bad}, 0.0)]
            )
        assert journal.get("bad") is None
        assert not journal.path.exists() or not journal.path.read_text()

    def test_non_numeric_error_names_the_metric(self, tmp_path):
        journal = SweepJournal(tmp_path)
        with pytest.raises(ValueError, match="'ipc'"):
            journal.record("bad", {}, {"miss_rate": 0.1, "ipc": "fast"}, 0.0)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_content_key_refuses_non_finite_payloads(self, bad):
        with pytest.raises(ValueError, match="stable content key"):
            content_key({"parameter": bad})

    def test_content_key_stable_for_finite_payloads(self):
        payload = {"parameter": 1024, "label": "dm"}
        assert content_key(payload) == content_key(dict(reversed(payload.items())))


class TestConcurrentReaders:
    def test_journal_reload_while_writer_appends(self, tmp_path):
        """Re-loading the journal directory mid-write never raises and
        never surfaces a half-written entry."""
        journal = SweepJournal(tmp_path)
        total = 100
        done = threading.Event()

        def write():
            for i in range(total):
                journal.record(f"k{i}", {"label": "dm"}, i / total, 0.0)
            done.set()

        thread = threading.Thread(target=write)
        thread.start()
        while not done.is_set():
            snapshot = SweepJournal(tmp_path)
            for key in list(snapshot._entries):
                metrics = SweepJournal.entry_metrics(snapshot.get(key))
                assert metrics is not None
                assert math.isfinite(metrics["miss_rate"])
        thread.join()
        assert len(SweepJournal(tmp_path)) == total
