"""Unit tests for the set-partitioned kernels on hand-checkable traces."""

import numpy as np
import pytest

from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.geometry import CacheGeometry
from repro.caches.stats import CacheStats
from repro.core.exclusion_cache import DynamicExclusionCache
from repro.core.hitlast import IdealHitLastStore
from repro.perf.kernels import simulate_direct_mapped, simulate_dynamic_exclusion
from repro.trace.trace import Trace


def itrace(addrs):
    return Trace(addrs, [0] * len(addrs))


GEOMETRY = CacheGeometry(64, 4)  # 16 lines, so 64 aliases with 0


class TestDirectMappedKernel:
    def test_empty_trace(self):
        assert simulate_direct_mapped(Trace.empty(), GEOMETRY) == CacheStats()

    def test_requires_direct_mapped_geometry(self):
        with pytest.raises(ValueError):
            simulate_direct_mapped(itrace([0]), CacheGeometry(64, 4, associativity=2))

    def test_thrashing_pair(self):
        # 0 and 64 alias in the same set: every access past the first
        # fill misses and evicts; only the initial fill is cold.
        stats = simulate_direct_mapped(itrace([0, 64] * 10), GEOMETRY)
        assert stats.accesses == 20
        assert stats.misses == 20
        assert stats.cold_misses == 1
        assert stats.evictions == 19
        assert stats == DirectMappedCache(GEOMETRY).simulate(itrace([0, 64] * 10))

    def test_pure_hits_after_cold(self):
        stats = simulate_direct_mapped(itrace([0, 0, 0, 4, 4]), GEOMETRY)
        assert stats.hits == 3
        assert stats.cold_misses == 2
        assert stats.evictions == 0

    def test_matches_reference_on_interleaved_sets(self):
        # Two sets active at once: partitioning must keep per-set order.
        addrs = [0, 4, 64, 68, 0, 4, 64, 68, 128, 132]
        trace = itrace(addrs)
        assert simulate_direct_mapped(trace, GEOMETRY) == DirectMappedCache(
            GEOMETRY
        ).simulate(trace)


class TestDynamicExclusionKernel:
    def test_empty_trace(self):
        assert simulate_dynamic_exclusion(Trace.empty(), GEOMETRY) == CacheStats()

    def test_requires_direct_mapped_geometry(self):
        with pytest.raises(ValueError):
            simulate_dynamic_exclusion(
                itrace([0]), CacheGeometry(64, 4, associativity=2)
            )

    def test_single_conflict_pair_learns_to_exclude(self):
        # (a b)^10 in one set: the FSM settles into keeping one word.
        trace = itrace([0, 64] * 10)
        reference = DynamicExclusionCache(
            GEOMETRY, store=IdealHitLastStore(default=True)
        ).simulate(trace)
        assert simulate_dynamic_exclusion(trace, GEOMETRY) == reference
        # DE must beat the 100% miss rate of the direct-mapped cache.
        assert reference.hits > 0

    @pytest.mark.parametrize("default", [True, False])
    def test_cold_polarity_matches_reference(self, default):
        trace = itrace([0, 64, 0, 64, 4, 68, 4, 68, 0, 64])
        reference = DynamicExclusionCache(
            GEOMETRY, store=IdealHitLastStore(default=default)
        ).simulate(trace)
        fast = simulate_dynamic_exclusion(trace, GEOMETRY, default_hit_last=default)
        assert fast == reference

    def test_run_compression_boundaries(self):
        # Runs of every length through every FSM edge: repeated words,
        # single bypasses, bypass-then-reload, cold runs.
        addrs = [0, 0, 64, 64, 64, 0, 64, 0, 0, 64, 64, 4, 4, 4, 68, 68]
        trace = itrace(addrs)
        reference = DynamicExclusionCache(
            GEOMETRY, store=IdealHitLastStore(default=True)
        ).simulate(trace)
        assert simulate_dynamic_exclusion(trace, GEOMETRY) == reference

    def test_seeded_random_traces(self):
        rng = np.random.default_rng(42)
        for _ in range(10):
            n = int(rng.integers(1, 2000))
            addrs = (rng.integers(0, 256, size=n) * 4).tolist()
            trace = itrace(addrs)
            for default in (True, False):
                reference = DynamicExclusionCache(
                    GEOMETRY, store=IdealHitLastStore(default=default)
                ).simulate(trace)
                fast = simulate_dynamic_exclusion(
                    trace, GEOMETRY, default_hit_last=default
                )
                assert fast == reference
