"""Shared-memory trace distribution: lifecycle and leak tests.

The contract under test (see ``repro.perf.shared``): the parent owns
each segment and must unlink it on every exit path — clean completion,
``SweepCellError`` sweeps, worker crashes — and workers only attach,
through a per-process memo.  The leak assertions match on the module's
``repro-trace`` name prefix in ``/dev/shm`` so an unrelated tenant of
the host cannot flake them.
"""

import os
import signal
from dataclasses import dataclass
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.sweep import run_sweep
from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.geometry import CacheGeometry
from repro.perf import parallel
from repro.perf.parallel import SweepCellError, TraceKey, run_labeled_cells
from repro.perf.shared import (
    SHM_PREFIX,
    SharedTrace,
    attach,
    attached_count,
    detach_all,
)
from repro.trace.trace import Trace

SHM_DIR = Path("/dev/shm")


def _shm_entries():
    if not SHM_DIR.is_dir():  # pragma: no cover - non-tmpfs hosts
        return set()
    return {p.name for p in SHM_DIR.iterdir() if p.name.startswith(SHM_PREFIX)}


@pytest.fixture(autouse=True)
def _no_shm_leaks():
    """Every test must end with the /dev/shm prefix set it started with."""
    before = _shm_entries()
    yield
    detach_all()
    assert _shm_entries() == before, "test leaked shared-memory segments"


def _toy_trace(refs=64):
    addrs = np.arange(refs, dtype=np.uint64) * 4
    kinds = np.zeros(refs, dtype=np.uint8)
    return Trace(addrs, kinds, name="toy")


class TestRoundTrip:
    def test_content_survives_the_segment(self):
        trace = _toy_trace()
        with SharedTrace.create(trace) as shared:
            loaded = attach(shared.handle)
            assert np.array_equal(loaded.addrs, trace.addrs)
            assert np.array_equal(loaded.kinds, trace.kinds)
            assert loaded.name == "toy"
            detach_all()

    def test_handle_mirrors_the_recipe_surface(self):
        key = TraceKey("gcc", "instruction", 1_000)
        trace = key.load()
        with SharedTrace.create(trace, recipe=key) as shared:
            handle = shared.handle
            assert (handle.name, handle.kind, handle.max_refs) == (
                "gcc", "instruction", 1_000,
            )
            assert parallel.is_trace_recipe(handle)
            loaded = handle.load()
            assert np.array_equal(loaded.addrs, trace.addrs)
            detach_all()

    def test_empty_trace_round_trips(self):
        with SharedTrace.create(_toy_trace(refs=0)) as shared:
            assert len(attach(shared.handle)) == 0
            detach_all()

    def test_attach_is_memoised_per_segment(self):
        with SharedTrace.create(_toy_trace()) as shared:
            first = attach(shared.handle)
            assert attach(shared.handle) is first
            assert attached_count() == 1
            detach_all()
            assert attached_count() == 0

    def test_unlink_is_idempotent(self):
        shared = SharedTrace.create(_toy_trace())
        name = shared.handle.shm_name
        assert name in _shm_entries()
        shared.unlink()
        assert name not in _shm_entries()
        shared.unlink()  # second call must be a no-op, not an error


@dataclass(frozen=True)
class PoisonedFactory:
    """Raises for every parameter — drives the SweepCellError path."""

    def __call__(self, size: object) -> DirectMappedCache:
        raise RuntimeError("poisoned factory")


@dataclass(frozen=True)
class KillOnceFactory:
    """SIGKILLs its worker for one parameter while the sentinel exists."""

    poison: int
    sentinel: str

    def __call__(self, size: object) -> DirectMappedCache:
        if int(size) == self.poison and os.path.exists(self.sentinel):  # type: ignore[call-overload]
            os.remove(self.sentinel)
            os.kill(os.getpid(), signal.SIGKILL)
        return DirectMappedCache(CacheGeometry(int(size), 4))  # type: ignore[call-overload]


class TestSweepLifecycle:
    TRACE = TraceKey("gcc", "instruction", 2_000)
    SIZES = [1024, 2048, 4096]

    def test_pooled_batch_sweep_cleans_up(self):
        cells = [
            ("dm", parallel_safe_factory(), size, self.TRACE)
            for size in self.SIZES
        ]
        outcomes = run_labeled_cells(
            cells, engine="batch", workers=2, journal=None, progress=False
        )
        assert all(outcome.ok for outcome in outcomes)

    def test_failed_sweep_unlinks_segments(self):
        with pytest.raises(SweepCellError):
            run_sweep(
                "size", self.SIZES, {"poisoned": PoisonedFactory()},
                [self.TRACE], engine="batch", workers=2, journal=None,
                progress=False,
            )
        # the autouse fixture asserts /dev/shm is clean afterwards

    def test_sigkilled_worker_does_not_leak(self, tmp_path):
        sentinel = tmp_path / "kill-once"
        sentinel.write_text("armed")
        factory = KillOnceFactory(poison=self.SIZES[1], sentinel=str(sentinel))
        cells = [("dm", factory, size, self.TRACE) for size in self.SIZES]
        outcomes = run_labeled_cells(
            cells, engine="batch", workers=2, journal=None, progress=False
        )
        # the batch group dies with the worker, the scheduler retries on
        # the per-cell path, and the second attempt (sentinel gone) works
        assert all(outcome.ok for outcome in outcomes)
        assert not sentinel.exists(), "the worker was never killed"


@dataclass(frozen=True)
class _DirectFactory:
    line_size: int = 4

    def __call__(self, size: object) -> DirectMappedCache:
        return DirectMappedCache(CacheGeometry(int(size), self.line_size))  # type: ignore[call-overload]


def parallel_safe_factory() -> _DirectFactory:
    return _DirectFactory()
