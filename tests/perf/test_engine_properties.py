"""Property tests for the engine dispatch.

Two invariants, enforced over randomly generated traces and geometries:

* for **every** registered kernel type, ``simulate(model, trace,
  engine="fast")`` equals ``engine="reference"`` field for field (the
  factory table below must cover ``engine.registered_kernel_types()``
  exactly, so registering a new kernel without extending this test
  fails loudly);
* ``has_kernel`` is False — i.e. the fallback is taken — for warm
  models and for unsupported store/policy configurations.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.geometry import CacheGeometry
from repro.caches.optimal import (
    OptimalCache,
    OptimalDirectMappedCache,
    OptimalLastLineCache,
)
from repro.caches.set_associative import SetAssociativeCache
from repro.core.exclusion_cache import DynamicExclusionCache
from repro.core.hitlast import HashedHitLastStore, IdealHitLastStore
from repro.perf import engine
from repro.trace.trace import Trace

def _direct_mapped(geometry):
    return CacheGeometry(geometry.size, geometry.line_size)


#: Model type -> factory producing a kernel-eligible instance for a
#: geometry.  Keys must match the registry exactly (checked below).
#: Direct-mapped-only models reshape the geometry to associativity 1.
FACTORIES = {
    DirectMappedCache: lambda g: DirectMappedCache(_direct_mapped(g)),
    DynamicExclusionCache: lambda g: DynamicExclusionCache(
        _direct_mapped(g), store=IdealHitLastStore(default=True)
    ),
    OptimalCache: lambda g: OptimalCache(g),
    OptimalDirectMappedCache: lambda g: OptimalDirectMappedCache(_direct_mapped(g)),
    OptimalLastLineCache: lambda g: OptimalLastLineCache(_direct_mapped(g)),
    SetAssociativeCache: lambda g: SetAssociativeCache(g, policy="lru"),
}

#: Small geometries so random traces produce real conflict traffic.
GEOMETRIES = [
    CacheGeometry(64, 4),
    CacheGeometry(256, 4, associativity=2),
    CacheGeometry(1024, 16, associativity=4),
    CacheGeometry(512, 8),
]

traces = st.lists(
    st.integers(min_value=0, max_value=(1 << 12) - 1), min_size=0, max_size=400
).map(lambda words: Trace([w * 4 for w in words], [0] * len(words)))


def test_factory_table_covers_the_registry():
    assert set(FACTORIES) == set(engine.registered_kernel_types())


@settings(max_examples=40, deadline=None)
@given(trace=traces, index=st.integers(min_value=0, max_value=len(GEOMETRIES) - 1))
def test_fast_engine_equals_reference_for_every_kernel_type(trace, index):
    geometry = GEOMETRIES[index]
    for factory in FACTORIES.values():
        fast = engine.simulate(factory(geometry), trace, engine="fast")
        reference = engine.simulate(factory(geometry), trace, engine="reference")
        assert fast == reference


@settings(max_examples=20, deadline=None)
@given(trace=traces)
def test_fast_path_taken_for_every_kernel_type(trace):
    # The equality test above would pass vacuously if every model fell
    # back; make sure the kernel actually matches a fresh instance.
    for factory in FACTORIES.values():
        assert engine.has_kernel(factory(GEOMETRIES[0]))


@settings(max_examples=20, deadline=None)
@given(trace=traces)
def test_warm_models_fall_back(trace):
    for model_type, factory in FACTORIES.items():
        model = factory(GEOMETRIES[0])
        if not hasattr(model, "access"):
            continue  # offline models are stateless; nothing to warm
        model.access(0)
        assert not engine.has_kernel(model), model_type


def test_unsupported_stores_and_policies_fall_back():
    geometry = GEOMETRIES[0]
    assert not engine.has_kernel(
        DynamicExclusionCache(geometry, store=HashedHitLastStore(64))
    )
    assert not engine.has_kernel(DynamicExclusionCache(geometry, sticky_levels=2))
    assert not engine.has_kernel(SetAssociativeCache(geometry, policy="fifo"))
    assert not engine.has_kernel(SetAssociativeCache(geometry, policy="random"))
    assert not engine.has_kernel(
        DirectMappedCache(geometry, allocate_on_miss=False)
    )
