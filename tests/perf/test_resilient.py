"""Fault-tolerance tests for the resilient sweep runner.

Covers the failure paths that the plain green-path sweep tests cannot:
a factory that crashes its worker process mid-sweep, per-cell timeouts,
journal-backed resume after an interruption, and the differential
acceptance check — an interrupted-then-resumed parallel sweep must
serialise byte-identically to an uninterrupted sequential reference run.

The killing/flaky factories are module-level frozen dataclasses so they
pickle across the process-pool boundary (workers start via fork on
Linux, and pickling resolves them by qualified name either way).
"""

import json
import os
import signal
import time
from dataclasses import dataclass

import pytest

from repro.analysis import serialize
from repro.analysis.sweep import run_sweep
from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.geometry import CacheGeometry
from repro.perf import parallel
from repro.perf.journal import JOURNAL_FILENAME, SweepJournal
from repro.perf.parallel import (
    SweepCellError,
    TraceKey,
    drain_telemetry,
    run_cells,
    run_labeled_cells,
)

TRACES = [TraceKey("gcc", "instruction", 2_000), TraceKey("li", "instruction", 2_000)]
SIZES = [1024, 2048, 4096]


@dataclass(frozen=True)
class CleanFactory:
    """A well-behaved direct-mapped factory."""

    line_size: int = 4

    def __call__(self, size: object) -> DirectMappedCache:
        return DirectMappedCache(CacheGeometry(int(size), self.line_size))  # type: ignore[call-overload]


@dataclass(frozen=True)
class CrashingFactory:
    """Raises a deterministic exception for one poisoned parameter."""

    poison: int

    def __call__(self, size: object) -> DirectMappedCache:
        if int(size) == self.poison:  # type: ignore[call-overload]
            raise RuntimeError(f"poisoned parameter {size}")
        return DirectMappedCache(CacheGeometry(int(size), 4))  # type: ignore[call-overload]


@dataclass(frozen=True)
class FlakyFactory:
    """Logs every invocation; SIGKILLs its process for the poisoned
    parameter while the sentinel file exists (simulating an OOM-killed
    worker that behaves after a restart with the sentinel removed)."""

    poison: int
    sentinel: str
    log: str

    def __call__(self, size: object) -> DirectMappedCache:
        with open(self.log, "a", encoding="utf-8") as handle:
            handle.write(f"poison={self.poison} param={int(size)}\n")  # type: ignore[call-overload]
        if int(size) == self.poison and os.path.exists(self.sentinel):  # type: ignore[call-overload]
            os.kill(os.getpid(), signal.SIGKILL)
        return DirectMappedCache(CacheGeometry(int(size), 4))  # type: ignore[call-overload]


@dataclass(frozen=True)
class SleepingFactory:
    """Hangs (sleeps) for one poisoned parameter."""

    poison: int
    delay: float

    def __call__(self, size: object) -> DirectMappedCache:
        if int(size) == self.poison:  # type: ignore[call-overload]
            time.sleep(self.delay)
        return DirectMappedCache(CacheGeometry(int(size), 4))  # type: ignore[call-overload]


def _grid(factories):
    return [
        (label, factory, size, trace)
        for size in SIZES
        for label, factory in factories.items()
        for trace in TRACES
    ]


def _log_lines(path) -> list:
    if not os.path.exists(path):
        return []
    return [line for line in open(path, encoding="utf-8").read().splitlines() if line]


class TestFailureAttribution:
    def test_sequential_failure_names_cell(self):
        outcomes = run_labeled_cells(
            _grid({"bad": CrashingFactory(poison=2048)}), workers=1
        )
        failed = [o for o in outcomes if not o.ok]
        assert len(failed) == len(TRACES)
        for outcome in failed:
            assert outcome.identity.parameter == 2048
            assert "RuntimeError" in outcome.error
            assert "poisoned parameter 2048" in outcome.error
        assert all(o.ok for o in outcomes if o.identity.parameter != 2048)

    def test_pooled_deterministic_failure_names_cell(self):
        outcomes = run_labeled_cells(
            _grid({"bad": CrashingFactory(poison=2048)}), workers=2
        )
        failed = [o for o in outcomes if not o.ok]
        assert {o.identity.parameter for o in failed} == {2048}
        # A deterministic exception is not retried.
        assert all(o.attempts == 1 for o in failed)

    def test_run_cells_raises_with_identity(self):
        cells = [(CrashingFactory(poison=2048), size, TRACES[0]) for size in SIZES]
        with pytest.raises(SweepCellError) as excinfo:
            run_cells(cells, workers=1)
        message = str(excinfo.value)
        assert "1 of 3 sweep cell(s) failed" in message
        assert "CrashingFactory" in message
        assert "2048" in message
        assert "gcc" in message
        assert len(excinfo.value.failures) == 1

    def test_run_sweep_raises_sweep_cell_error(self):
        with pytest.raises(SweepCellError, match="poisoned parameter 2048"):
            run_sweep(
                "size",
                SIZES,
                {"bad": CrashingFactory(poison=2048)},
                TRACES,
                workers=1,
            )


class TestWorkerCrashRecovery:
    def test_crashing_worker_is_attributed_and_rest_completes(self, tmp_path):
        sentinel = tmp_path / "armed"
        sentinel.touch()
        factories = {
            "stable": FlakyFactory(-1, str(sentinel), str(tmp_path / "log.txt")),
            "flaky": FlakyFactory(2048, str(sentinel), str(tmp_path / "log.txt")),
        }
        outcomes = run_labeled_cells(
            _grid(factories), workers=2, pool_retries=1
        )
        failed = [o for o in outcomes if not o.ok]
        assert len(failed) == len(TRACES)
        for outcome in failed:
            assert outcome.identity.label == "flaky"
            assert outcome.identity.parameter == 2048
            assert "worker process died" in outcome.error
        # Every non-poisoned cell survived the crashes.
        assert sum(o.ok for o in outcomes) == len(outcomes) - len(TRACES)

    def test_interrupted_sweep_resumes_byte_identical(self, tmp_path):
        """The acceptance test: kill a worker mid-sweep, resume from the
        journal, and get a sweep byte-identical to a clean sequential run
        — recomputing only the cells that failed."""
        sentinel = tmp_path / "armed"
        sentinel.touch()
        log = tmp_path / "invocations.txt"
        journal_dir = tmp_path / "resume"
        factories = {
            "stable": FlakyFactory(-1, str(sentinel), str(log)),
            "flaky": FlakyFactory(2048, str(sentinel), str(log)),
        }

        with pytest.raises(SweepCellError) as excinfo:
            run_sweep(
                "size", SIZES, factories, TRACES,
                workers=2, journal=str(journal_dir),
            )
        assert all(f.identity.parameter == 2048 for f in excinfo.value.failures)
        assert all(f.identity.label == "flaky" for f in excinfo.value.failures)

        # Every completed cell was journaled; the poisoned ones were not.
        journal = SweepJournal(journal_dir)
        total = len(SIZES) * len(factories) * len(TRACES)
        assert len(journal) == total - len(TRACES)

        run1_invocations = len(_log_lines(log))
        sentinel.unlink()  # the crash condition clears (e.g. more memory)

        resumed = run_sweep(
            "size", SIZES, factories, TRACES,
            workers=2, journal=str(journal_dir),
        )

        # Only the failed cells were recomputed on resume.
        resumed_lines = _log_lines(log)[run1_invocations:]
        assert len(resumed_lines) == len(TRACES)
        assert all("param=2048" in line and "poison=2048" in line
                   for line in resumed_lines)

        reference = run_sweep("size", SIZES, factories, TRACES, workers=1)
        assert serialize.dumps(resumed) == serialize.dumps(reference)

    def test_solo_mode_survives_persistent_crasher(self, tmp_path):
        """A factory that kills its worker on *every* attempt still lets
        the rest of the grid finish (solo fallback guarantees progress)."""
        sentinel = tmp_path / "armed"
        sentinel.touch()
        factories = {
            "flaky": FlakyFactory(2048, str(sentinel), str(tmp_path / "log.txt")),
        }
        outcomes = run_labeled_cells(
            _grid(factories), workers=2, pool_retries=0
        )
        assert sum(not o.ok for o in outcomes) == len(TRACES)
        assert sum(o.ok for o in outcomes) == len(outcomes) - len(TRACES)


class TestTimeout:
    def test_stuck_cell_times_out_and_rest_completes(self):
        factories = {"slow": SleepingFactory(poison=1024, delay=60.0)}
        started = time.perf_counter()
        outcomes = run_labeled_cells(
            _grid(factories), workers=2, timeout=1.0, pool_retries=1
        )
        elapsed = time.perf_counter() - started
        assert elapsed < 30.0  # terminated, not slept out
        failed = [o for o in outcomes if not o.ok]
        assert {o.identity.parameter for o in failed} == {1024}
        for outcome in failed:
            assert "per-cell timeout" in outcome.error
            assert outcome.identity.label == "slow"
        assert all(o.ok for o in outcomes if o.identity.parameter != 1024)

    def test_sequential_ignores_timeout(self):
        # A sequential run cannot interrupt itself; short sleeps complete.
        factories = {"slow": SleepingFactory(poison=1024, delay=0.05)}
        outcomes = run_labeled_cells(
            [("slow", factories["slow"], 1024, TRACES[0])], workers=1, timeout=0.001
        )
        assert outcomes[0].ok


class TestJournal:
    def test_second_run_fully_cached(self, tmp_path):
        cells = _grid({"clean": CleanFactory()})
        drain_telemetry()
        first = run_labeled_cells(cells, workers=1, journal=tmp_path)
        second = run_labeled_cells(cells, workers=1, journal=tmp_path)
        assert [o.miss_rate for o in second] == [o.miss_rate for o in first]
        assert all(o.cached for o in second)
        warm = drain_telemetry()[-1]
        assert warm.cached == warm.total == len(cells)
        assert warm.completed == len(cells)

    def test_journal_key_separates_factory_configs(self, tmp_path):
        # Same label, same parameter, same trace, different line size:
        # the factory fingerprint must keep the journal entries apart.
        cells_a = [("curve", CleanFactory(line_size=4), 2048, TRACES[0])]
        cells_b = [("curve", CleanFactory(line_size=16), 2048, TRACES[0])]
        run_labeled_cells(cells_a, workers=1, journal=tmp_path)
        outcome_b = run_labeled_cells(cells_b, workers=1, journal=tmp_path)[0]
        assert not outcome_b.cached
        outcome_a = run_labeled_cells(cells_a, workers=1, journal=tmp_path)[0]
        assert outcome_a.cached

    def test_torn_tail_line_is_skipped(self, tmp_path):
        cells = _grid({"clean": CleanFactory()})
        run_labeled_cells(cells, workers=1, journal=tmp_path)
        path = tmp_path / JOURNAL_FILENAME
        intact = len(SweepJournal(tmp_path))
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"kind": "sweep-cell", "version": 1, "key": "abc')
        assert len(SweepJournal(tmp_path)) == intact
        outcomes = run_labeled_cells(cells, workers=1, journal=tmp_path)
        assert all(o.cached for o in outcomes)

    def test_newer_version_entries_are_not_trusted(self, tmp_path):
        journal = SweepJournal(tmp_path)
        journal.record("k1", {"label": "x"}, 0.5, 0.1)
        path = tmp_path / JOURNAL_FILENAME
        entry = json.loads(path.read_text().splitlines()[0])
        entry["version"] = 99
        entry["key"] = "k2"
        with path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry) + "\n")
        reloaded = SweepJournal(tmp_path)
        assert reloaded.get("k1") is not None
        assert reloaded.get("k2") is None

    def test_unpicklable_factory_is_never_journaled(self, tmp_path):
        factory = lambda size: DirectMappedCache(CacheGeometry(int(size), 4))  # noqa: E731
        cells = [("lambda", factory, 2048, TRACES[0])]
        run_labeled_cells(cells, workers=1, journal=tmp_path)
        assert len(SweepJournal(tmp_path)) == 0
        outcome = run_labeled_cells(cells, workers=1, journal=tmp_path)[0]
        assert outcome.ok and not outcome.cached

    def test_scale_change_misses_the_journal(self, tmp_path):
        # max_refs is part of the identity: a rescaled trace must not
        # replay the old scale's miss rate.
        short = [("clean", CleanFactory(), 2048, TraceKey("gcc", "instruction", 2_000))]
        longer = [("clean", CleanFactory(), 2048, TraceKey("gcc", "instruction", 3_000))]
        run_labeled_cells(short, workers=1, journal=tmp_path)
        outcome = run_labeled_cells(longer, workers=1, journal=tmp_path)[0]
        assert not outcome.cached


class TestTelemetry:
    def test_counters_for_mixed_run(self, tmp_path):
        drain_telemetry()
        cells = _grid({"bad": CrashingFactory(poison=2048)})
        run_labeled_cells(cells, workers=1, journal=tmp_path)
        record = drain_telemetry()[-1]
        assert record.total == len(cells)
        assert record.failed == len(TRACES)
        assert record.completed == len(cells) - len(TRACES)
        assert record.cached == 0
        data = record.to_dict()
        assert data["kind"] == "sweep-telemetry"
        assert data["cells_failed"] == len(TRACES)
        assert data["cell_seconds_max"] >= data["cell_seconds_mean"] >= 0.0
        assert str(record.total) in record.summary()

    def test_pool_restarts_counted(self, tmp_path):
        sentinel = tmp_path / "armed"
        sentinel.touch()
        drain_telemetry()
        factories = {
            "flaky": FlakyFactory(2048, str(sentinel), str(tmp_path / "log.txt")),
        }
        run_labeled_cells(_grid(factories), workers=2, pool_retries=1)
        record = drain_telemetry()[-1]
        assert record.pool_restarts >= 1
        assert record.failed == len(TRACES)


class TestProgress:
    def test_progress_lines_name_cells(self, tmp_path, capsys):
        cells = [("clean", CleanFactory(), 2048, TRACES[0])]
        run_labeled_cells(cells, workers=1, progress=True)
        err = capsys.readouterr().err
        assert "[sweep 1/1]" in err
        assert "clean | 2048 | gcc(instruction, 2000 refs)" in err
