"""Batch-aware sweep scheduling: grouping, journals, and fallbacks.

``--engine batch`` is a scheduling strategy, not a different
simulation, so these tests pin the observable contract: outcomes equal
to the fast tier cell for cell, journal keys byte-identical (batch and
fast sweeps resume each other), every pending cell dispatched exactly
once no matter how the grouping falls out (a hypothesis property), and
failures attributed to single cells with the rest of the group
surviving.
"""

import json
from dataclasses import dataclass

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.geometry import CacheGeometry
from repro.core.exclusion_cache import DynamicExclusionCache
from repro.core.hitlast import IdealHitLastStore
from repro.perf import parallel
from repro.perf.batch import DEBatchSpec
from repro.perf.journal import JOURNAL_FILENAME
from repro.perf.parallel import (
    DEFAULT_BATCH_CELLS,
    TraceKey,
    resolve_batch_cells,
    run_labeled_cells,
)

TRACES = [
    TraceKey("gcc", "data", 2_000),
    TraceKey("li", "data", 2_000),
    TraceKey("espresso", "data", 2_000),
]
SIZES = [1024, 2048, 8192]


@dataclass(frozen=True)
class DEFactory:
    """DE factory speaking the batch_spec protocol."""

    default_hit_last: bool = True

    def __call__(self, size: object) -> DynamicExclusionCache:
        return DynamicExclusionCache(
            CacheGeometry(int(size), 4),  # type: ignore[call-overload]
            store=IdealHitLastStore(default=self.default_hit_last),
        )

    def batch_spec(self, size: object) -> DEBatchSpec:
        return DEBatchSpec(
            CacheGeometry(int(size), 4),  # type: ignore[call-overload]
            default_hit_last=self.default_hit_last,
        )


@dataclass(frozen=True)
class PlainDEFactory:
    """Same models, no batch_spec method — exercises the model path."""

    def __call__(self, size: object) -> DynamicExclusionCache:
        return DynamicExclusionCache(
            CacheGeometry(int(size), 4),  # type: ignore[call-overload]
            store=IdealHitLastStore(),
        )


@dataclass(frozen=True)
class DirectFactory:
    """No batch kernel at all — must fall back to per-cell fast."""

    def __call__(self, size: object) -> DirectMappedCache:
        return DirectMappedCache(CacheGeometry(int(size), 4))  # type: ignore[call-overload]


@dataclass(frozen=True)
class PoisonFactory:
    """Raises for one poisoned parameter."""

    poison: int

    def __call__(self, size: object) -> DynamicExclusionCache:
        if int(size) == self.poison:  # type: ignore[call-overload]
            raise RuntimeError(f"poisoned parameter {size}")
        return DynamicExclusionCache(
            CacheGeometry(int(size), 4), store=IdealHitLastStore()  # type: ignore[call-overload]
        )


def _grid(factories, traces=TRACES, sizes=SIZES):
    return [
        (label, factory, size, trace)
        for size in sizes
        for label, factory in factories.items()
        for trace in traces
    ]


FACTORIES = {
    "de": DEFactory(),
    "de-miss": DEFactory(default_hit_last=False),
    "de-plain": PlainDEFactory(),
    "direct": DirectFactory(),
}


class TestBatchEqualsFast:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_mixed_grid_matches_fast(self, workers):
        cells = _grid(FACTORIES)
        fast = run_labeled_cells(cells, engine="fast", workers=1,
                                 progress=False)
        batch = run_labeled_cells(cells, engine="batch", workers=workers,
                                  progress=False)
        assert all(outcome.ok for outcome in batch)
        for expected, got in zip(fast, batch):
            assert got.identity.payload() == expected.identity.payload()
            assert got.miss_rate == expected.miss_rate

    def test_reference_differential(self):
        """Three traces x mixed geometries: batch == reference engine."""
        cells = _grid({"de": DEFactory()}, sizes=[1024, 8192])
        reference = run_labeled_cells(cells, engine="reference", workers=1,
                                      progress=False)
        batch = run_labeled_cells(cells, engine="batch", workers=1,
                                  progress=False)
        assert [o.miss_rate for o in batch] == [o.miss_rate for o in reference]

    def test_raw_trace_objects_group_by_identity(self):
        """Raw Trace cells (no recipe) batch too, keyed by object id."""
        trace = TRACES[0].load()
        cells = [("de", DEFactory(), size, trace) for size in SIZES]
        fast = run_labeled_cells(cells, engine="fast", workers=1,
                                 progress=False)
        batch = run_labeled_cells(cells, engine="batch", workers=1,
                                  progress=False)
        assert [o.miss_rate for o in batch] == [o.miss_rate for o in fast]


class TestJournalCompatibility:
    def test_journal_keys_identical_to_fast(self, tmp_path):
        cells = _grid({"de": DEFactory()})
        run_labeled_cells(cells, engine="fast", workers=1,
                          journal=tmp_path / "fast", progress=False)
        run_labeled_cells(cells, engine="batch", workers=1,
                          journal=tmp_path / "batch", progress=False)

        def keys(directory):
            lines = (directory / JOURNAL_FILENAME).read_text().splitlines()
            return [json.loads(line)["key"] for line in lines if line]

        # Batched sweeps journal group by group, so entry order may
        # differ, but the key set must be byte-identical — that is what
        # makes batch and fast sweeps resume each other.
        fast_keys = keys(tmp_path / "fast")
        batch_keys = keys(tmp_path / "batch")
        assert len(batch_keys) == len(fast_keys)
        assert set(batch_keys) == set(fast_keys)

    @pytest.mark.parametrize("first,second", [("batch", "fast"),
                                              ("fast", "batch")])
    def test_cross_engine_resume(self, tmp_path, first, second):
        cells = _grid({"de": DEFactory()})
        cold = run_labeled_cells(cells, engine=first, workers=1,
                                 journal=tmp_path, progress=False)
        warm = run_labeled_cells(cells, engine=second, workers=1,
                                 journal=tmp_path, progress=False)
        assert all(outcome.cached for outcome in warm)
        assert [o.miss_rate for o in warm] == [o.miss_rate for o in cold]


class TestGroupingProperty:
    @given(
        trace_of_cell=st.lists(st.integers(min_value=0, max_value=4),
                               min_size=1, max_size=40),
        pending_mask=st.lists(st.booleans(), min_size=40, max_size=40),
        limit=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=200, deadline=None)
    def test_every_pending_cell_dispatched_exactly_once(
        self, trace_of_cell, pending_mask, limit
    ):
        cells = [
            (f"c{i}", DEFactory(), 1024, TRACES[t % len(TRACES)])
            for i, t in enumerate(trace_of_cell)
        ]
        pending = [i for i in range(len(cells)) if pending_mask[i]]
        groups = parallel._group_pending(cells, pending, limit)
        dispatched = [index for group in groups for index in group]
        # exactly-once, regardless of grouping
        assert sorted(dispatched) == sorted(pending)
        for group in groups:
            assert 1 <= len(group) <= limit
            # one shared trace per group, so one kernel invocation works
            group_keys = {id(cells[index][3]) for index in group}
            assert len(group_keys) == 1

    def test_resolve_batch_cells(self, monkeypatch):
        assert resolve_batch_cells() == DEFAULT_BATCH_CELLS
        assert resolve_batch_cells(7) == 7
        monkeypatch.setenv("REPRO_BATCH_CELLS", "5")
        assert resolve_batch_cells() == 5
        assert resolve_batch_cells(3) == 3
        with pytest.raises(ValueError):
            resolve_batch_cells(0)


class TestFailureHandling:
    def test_poisoned_cell_fails_alone(self):
        cells = _grid({"bad": PoisonFactory(poison=2048)})
        outcomes = run_labeled_cells(cells, engine="batch", workers=1,
                                     progress=False)
        failed = [o for o in outcomes if not o.ok]
        assert {o.identity.parameter for o in failed} == {2048}
        assert all("poisoned parameter 2048" in o.error for o in failed)
        assert all(o.ok for o in outcomes if o.identity.parameter != 2048)

    def test_poisoned_cell_fails_alone_pooled(self):
        cells = _grid({"bad": PoisonFactory(poison=2048)})
        outcomes = run_labeled_cells(cells, engine="batch", workers=2,
                                     progress=False)
        failed = [o for o in outcomes if not o.ok]
        assert {o.identity.parameter for o in failed} == {2048}
        assert all(o.ok for o in outcomes if o.identity.parameter != 2048)

    def test_evaluator_cells_bypass_batching(self):
        """Cells with a custom evaluator never enter the batched path."""
        def evaluator(model, trace, engine):
            stats = parallel.engine_mod.simulate(model, trace, engine="fast")
            return {"miss_rate": stats.miss_rate}

        cells = [("de", DEFactory(), size, TRACES[0]) for size in SIZES]
        outcomes = run_labeled_cells(cells, engine="batch", workers=1,
                                     progress=False, evaluator=evaluator)
        fast = run_labeled_cells(cells, engine="fast", workers=1,
                                 progress=False)
        assert [o.miss_rate for o in outcomes] == [o.miss_rate for o in fast]
