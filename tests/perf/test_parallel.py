"""Tests for the parallel sweep runner and worker-count resolution."""

import pytest

from repro.analysis.sweep import run_sweep
from repro.experiments.common import StandardFactory, standard_factories
from repro.perf import parallel
from repro.perf.parallel import TraceKey


class TestWorkerResolution:
    def test_env_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert parallel.env_workers() is None
        assert parallel.resolve_workers() == 1

    def test_env_valid(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert parallel.env_workers() == 3
        assert parallel.resolve_workers() == 3

    @pytest.mark.parametrize("raw", ["two", "1.5", ""])
    def test_env_not_an_integer(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_WORKERS", raw)
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            parallel.env_workers()

    @pytest.mark.parametrize("raw", ["0", "-2"])
    def test_env_must_be_positive(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_WORKERS", raw)
        with pytest.raises(ValueError, match="at least 1"):
            parallel.env_workers()

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert parallel.resolve_workers(2) == 2

    def test_cli_default_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        parallel.set_default_workers(2)
        try:
            assert parallel.resolve_workers() == 2
        finally:
            parallel.set_default_workers(None)

    def test_invalid_explicit_workers(self):
        with pytest.raises(ValueError):
            parallel.resolve_workers(0)
        with pytest.raises(ValueError):
            parallel.set_default_workers(0)


class TestTraceKey:
    def test_load_is_deterministic_and_memoised(self):
        key = TraceKey("gcc", "instruction", 2_000)
        first = key.load()
        assert first is key.load()  # memoised per process
        assert len(first) == 2_000
        assert first.name == "gcc"
        parallel.clear_trace_cache()
        regenerated = key.load()
        assert regenerated is not first
        assert regenerated == first

    def test_as_trace_passthrough(self):
        trace = TraceKey("gcc", "instruction", 1_000).load()
        assert parallel.as_trace(trace) is trace


class TestParallelSweep:
    """workers=2 must reproduce the sequential sweep bit-for-bit."""

    KEYS = [TraceKey(name, "instruction", 3_000) for name in ["gcc", "espresso"]]
    SIZES = [1024, 8 * 1024]

    def _sweep(self, engine, workers):
        return run_sweep(
            "cache size",
            self.SIZES,
            standard_factories(4),
            self.KEYS,
            engine=engine,
            workers=workers,
        )

    def test_parallel_matches_sequential(self):
        sequential = self._sweep("reference", 1)
        parallel_run = self._sweep("reference", 2)
        assert parallel_run == sequential

    def test_fast_engine_matches_reference(self):
        # 'optimal' has no kernel and exercises the in-sweep fallback.
        assert self._sweep("fast", 1) == self._sweep("reference", 1)

    def test_fast_parallel_matches_reference_sequential(self):
        assert self._sweep("fast", 2) == self._sweep("reference", 1)

    def test_factories_are_picklable(self):
        import pickle

        for factory in standard_factories(16).values():
            clone = pickle.loads(pickle.dumps(factory))
            assert clone == factory
        assert isinstance(
            pickle.loads(pickle.dumps(StandardFactory("optimal", 4))), StandardFactory
        )
