"""Tests for the parallel sweep runner and worker-count resolution."""

import pytest

from repro.analysis.sweep import run_sweep
from repro.experiments.common import StandardFactory, standard_factories
from repro.perf import parallel
from repro.perf.parallel import TraceKey


class TestWorkerResolution:
    def test_env_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert parallel.env_workers() is None
        assert parallel.resolve_workers() == 1

    def test_env_valid(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert parallel.env_workers() == 3
        assert parallel.resolve_workers() == 3

    @pytest.mark.parametrize("raw", ["two", "1.5", ""])
    def test_env_not_an_integer(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_WORKERS", raw)
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            parallel.env_workers()

    @pytest.mark.parametrize("raw", ["0", "-2"])
    def test_env_must_be_positive(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_WORKERS", raw)
        with pytest.raises(ValueError, match="at least 1"):
            parallel.env_workers()

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert parallel.resolve_workers(2) == 2

    def test_cli_default_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        parallel.set_default_workers(2)
        try:
            assert parallel.resolve_workers() == 2
        finally:
            parallel.set_default_workers(None)

    def test_invalid_explicit_workers(self):
        with pytest.raises(ValueError):
            parallel.resolve_workers(0)
        with pytest.raises(ValueError):
            parallel.set_default_workers(0)


class TestTraceKey:
    def test_load_is_deterministic_and_memoised(self):
        key = TraceKey("gcc", "instruction", 2_000)
        first = key.load()
        assert first is key.load()  # memoised per process
        assert len(first) == 2_000
        assert first.name == "gcc"
        parallel.clear_trace_cache()
        regenerated = key.load()
        assert regenerated is not first
        assert regenerated == first

    def test_as_trace_passthrough(self):
        trace = TraceKey("gcc", "instruction", 1_000).load()
        assert parallel.as_trace(trace) is trace


class TestParallelSweep:
    """workers=2 must reproduce the sequential sweep bit-for-bit."""

    KEYS = [TraceKey(name, "instruction", 3_000) for name in ["gcc", "espresso"]]
    SIZES = [1024, 8 * 1024]

    def _sweep(self, engine, workers):
        return run_sweep(
            "cache size",
            self.SIZES,
            standard_factories(4),
            self.KEYS,
            engine=engine,
            workers=workers,
        )

    def test_parallel_matches_sequential(self):
        sequential = self._sweep("reference", 1)
        parallel_run = self._sweep("reference", 2)
        assert parallel_run == sequential

    def test_fast_engine_matches_reference(self):
        # 'optimal' has no kernel and exercises the in-sweep fallback.
        assert self._sweep("fast", 1) == self._sweep("reference", 1)

    def test_fast_parallel_matches_reference_sequential(self):
        assert self._sweep("fast", 2) == self._sweep("reference", 1)

    def test_factories_are_picklable(self):
        import pickle

        for factory in standard_factories(16).values():
            clone = pickle.loads(pickle.dumps(factory))
            assert clone == factory
        assert isinstance(
            pickle.loads(pickle.dumps(StandardFactory("optimal", 4))), StandardFactory
        )


class TestSweepTelemetry:
    def _record(self):
        return parallel.SweepTelemetry(
            engine="fast",
            workers=2,
            total=7,
            completed=5,
            failed=1,
            cached=1,
            pool_restarts=1,
            elapsed=1.25,
            cell_seconds=[0.5, 0.25],
        )

    def test_as_dict_round_trips_through_json(self):
        import json

        record = self._record()
        data = json.loads(json.dumps(record.as_dict()))
        assert parallel.SweepTelemetry.from_dict(data) == record

    def test_as_dict_matches_the_original_to_dict_shape(self):
        record = self._record()
        data = record.as_dict()
        assert data == record.to_dict()
        assert data["kind"] == "sweep-telemetry"
        assert data["version"] == 1
        assert data["cell_seconds_mean"] == 0.375
        assert data["cell_seconds_max"] == 0.5

    def test_from_dict_rejects_other_kinds(self):
        with pytest.raises(ValueError, match="sweep-telemetry"):
            parallel.SweepTelemetry.from_dict({"kind": "span"})

    def test_missing_cell_seconds_tolerated(self):
        data = self._record().as_dict()
        del data["cell_seconds"]
        assert parallel.SweepTelemetry.from_dict(data).cell_seconds == []


class TestTelemetryLog:
    def test_drain_returns_and_clears(self):
        parallel.drain_telemetry()
        parallel._log_telemetry(parallel.SweepTelemetry(engine="reference", workers=1))
        drained = parallel.drain_telemetry()
        assert len(drained) == 1
        assert parallel.drain_telemetry() == []

    def test_log_is_bounded(self):
        parallel.drain_telemetry()
        limit = parallel.TELEMETRY_LOG_LIMIT
        for index in range(limit + 10):
            parallel._log_telemetry(
                parallel.SweepTelemetry(engine="reference", workers=1, total=index)
            )
        drained = parallel.drain_telemetry()
        assert len(drained) == limit
        # The oldest records were discarded, not the newest.
        assert drained[0].total == 10
        assert drained[-1].total == limit + 9

    def test_concurrent_log_and_drain(self):
        import threading

        parallel.drain_telemetry()
        collected = []
        lock = threading.Lock()

        def writer():
            for _ in range(50):
                parallel._log_telemetry(
                    parallel.SweepTelemetry(engine="reference", workers=1)
                )

        def drainer():
            for _ in range(20):
                got = parallel.drain_telemetry()
                with lock:
                    collected.extend(got)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        threads += [threading.Thread(target=drainer) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        with lock:
            collected.extend(parallel.drain_telemetry())
        # 200 records logged (under the bound): none lost, none duplicated.
        assert len(collected) == 200


class TestSweepObservability:
    def test_sweep_publishes_metrics_and_spans(self, tmp_path):
        from repro import obs
        from repro.obs.metrics import MetricsRegistry

        tracer = obs.install_tracer(obs.Tracer(tmp_path))
        registry = obs.install_registry(MetricsRegistry())
        try:
            run_sweep(
                "cache size",
                [1024, 2048],
                {"direct-mapped": StandardFactory("direct-mapped", 4)},
                [TraceKey("tomcatv", "instruction", 500)],
                engine="reference",
                workers=1,
            )
        finally:
            obs.uninstall_registry()
            obs.uninstall_tracer()
            tracer.close()
        assert registry.value("sweep.runs", engine="reference") == 1
        assert registry.value("sweep.cells.total", engine="reference") == 2
        assert registry.value("sweep.cells.completed", engine="reference") == 2
        assert registry.value("sweep.cells.failed", engine="reference") == 0
        assert registry.get("cell.seconds", engine="reference").count == 2
        totals = tracer.aggregate()
        assert totals["sweep"]["count"] == 1
        assert totals["cell"]["count"] == 2
