"""Differential tests for the batched dynamic-exclusion kernel.

The batched tier promises *exact* agreement with the per-cell engines:
every ``CacheStats`` field equal to the fast kernel and the reference
simulator, and the ``fsm.*`` observability counters pinned equal too —
the batch kernel replays the same FSM, so even its telemetry must be
indistinguishable.  Geometries deliberately mix line sizes (word lines
and the 16-byte refinement chain), cache sizes spanning the scalar-tail
and wavefront regimes, and both cold hit-last polarities.
"""

import numpy as np
import pytest

from repro.caches.geometry import CacheGeometry
from repro.core.exclusion_cache import DynamicExclusionCache
from repro.core.hitlast import IdealHitLastStore
from repro.obs.metrics import MetricsRegistry, install_registry, uninstall_registry
from repro.perf import engine
from repro.perf.batch import DEBatchSpec, simulate_dynamic_exclusion_batch
from repro.perf.kernels import simulate_dynamic_exclusion
from repro.trace.trace import Trace
from repro.workloads.registry import trace_by_kind

TRACE_NAMES = ("gcc", "li", "espresso")
GEOMETRIES = [
    CacheGeometry(size, line_size)
    for line_size in (4, 16)
    for size in (1024, 8192, 65536)
]


@pytest.fixture(scope="module")
def traces():
    return {name: trace_by_kind(name, "data", max_refs=6_000)
            for name in TRACE_NAMES}


def _specs():
    return [
        DEBatchSpec(geometry, default_hit_last=default)
        for geometry in GEOMETRIES
        for default in (True, False)
    ]


@pytest.mark.parametrize("name", TRACE_NAMES)
def test_batch_matches_fast_kernel_exactly(traces, name):
    trace = traces[name]
    specs = _specs()
    batched = simulate_dynamic_exclusion_batch(trace, specs)
    for spec, stats in zip(specs, batched):
        expected = simulate_dynamic_exclusion(
            trace, spec.geometry, default_hit_last=spec.default_hit_last
        )
        assert stats == expected, (name, spec)


def test_batch_matches_reference_engine(traces):
    """One full-engine cross-check: batch == reference, field by field."""
    trace = traces["gcc"]
    for geometry in (CacheGeometry(2048, 4), CacheGeometry(16384, 4)):
        spec = DEBatchSpec(geometry)
        (batched,) = simulate_dynamic_exclusion_batch(trace, [spec])
        reference = engine.simulate(
            DynamicExclusionCache(geometry, store=IdealHitLastStore()),
            trace, engine="reference",
        )
        assert batched == reference


def _fsm_counters(fn):
    registry = MetricsRegistry()
    install_registry(registry)
    try:
        fn()
    finally:
        uninstall_registry()
    totals = {}
    for metric in registry.export():
        if metric["name"].startswith("fsm."):
            key = (metric["name"], metric["labels"].get("benchmark"))
            totals[key] = totals.get(key, 0) + metric["value"]
    return totals


def test_fsm_counters_pinned_equal(traces):
    trace = traces["li"]
    specs = [
        DEBatchSpec(CacheGeometry(size, 4)) for size in (1024, 8192, 65536)
    ]
    batched = _fsm_counters(
        lambda: simulate_dynamic_exclusion_batch(trace, specs)
    )
    sequential = _fsm_counters(
        lambda: [
            simulate_dynamic_exclusion(trace, spec.geometry,
                                       default_hit_last=True)
            for spec in specs
        ]
    )
    assert batched and batched == sequential


def test_empty_trace():
    empty = Trace(np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.uint8))
    specs = [DEBatchSpec(CacheGeometry(1024, 4))]
    (stats,) = simulate_dynamic_exclusion_batch(empty, specs)
    assert stats.accesses == 0 and stats.misses == 0


def test_empty_spec_list(traces):
    assert simulate_dynamic_exclusion_batch(traces["gcc"], []) == []


def test_single_cell_batch(traces):
    trace = traces["espresso"]
    spec = DEBatchSpec(CacheGeometry(4096, 4), default_hit_last=False)
    (stats,) = simulate_dynamic_exclusion_batch(trace, [spec])
    assert stats == simulate_dynamic_exclusion(
        trace, spec.geometry, default_hit_last=False
    )


def test_rejects_associative_geometry():
    with pytest.raises(ValueError):
        DEBatchSpec(CacheGeometry(1024, 4, associativity=2))


def test_engine_registry_round_trip():
    """batch_spec_for must describe exactly the model the engine sees."""
    geometry = CacheGeometry(8192, 4)
    cache = DynamicExclusionCache(
        geometry, store=IdealHitLastStore(default=False)
    )
    spec = engine.batch_spec_for(cache)
    assert spec == DEBatchSpec(geometry, default_hit_last=False)
    assert engine.is_batch_spec(spec)
    assert engine.has_batch_kernel(cache)
    # warmed-up models are not freshly cold: no batch eligibility
    trace = trace_by_kind("gcc", "data", max_refs=500)
    for address in trace.addrs[:16]:
        cache.access(int(address))
    assert engine.batch_spec_for(cache) is None
