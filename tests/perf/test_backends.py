"""Tests for the pluggable sweep execution backends.

Three properties matter:

* **registry** — the three backends are registered, selectable, and
  resolved with the documented precedence (explicit > CLI default >
  ``REPRO_BACKEND`` > automatic);
* **invariance** — the same grid produces identical metrics and
  identical journal entries under ``inline``, ``local-pool``, and
  ``fleet``, and a journal written under one backend resumes under any
  other (both directions);
* **fleet fault tolerance** — a SIGKILLed worker retires, its in-flight
  cell re-dispatches inside the crash budget, a poisoned cell that
  kills every worker it touches fails with exact worker attribution,
  and a never-ready endpoint is retired without a respawn loop.

The fleet factories live in :mod:`tests.perf.fleet_helpers` so fresh
worker processes can unpickle them by qualified name.
"""

import io
import json
import os
import sys
import threading

import pytest

from repro.perf import backends
from repro.perf.backends import (
    FleetBackend,
    InlineBackend,
    LocalPoolBackend,
    backend_names,
    create_backend,
    live_workers,
    resolve_backend,
    set_default_backend,
    worker_command,
)
from repro.perf.parallel import (
    TraceKey,
    drain_telemetry,
    identity_for,
    run_labeled_cells,
)
from repro.perf.journal import SweepJournal
from repro.perf.worker import worker_main

from .fleet_helpers import (
    KillAlwaysFactory,
    KillOnceFactory,
    SlowFactory,
    WellBehavedFactory,
    raise_for_2048,
)

TRACES = [TraceKey("gcc", "instruction", 2_000), TraceKey("li", "instruction", 2_000)]
SIZES = [1024, 2048, 4096]


def _grid(factory):
    return [
        ("curve", factory, size, trace) for size in SIZES for trace in TRACES
    ]


def _zombie_children():
    """PIDs of defunct children of this process (Linux /proc scan)."""
    import glob

    me = str(os.getpid())
    zombies = []
    for stat_path in glob.glob("/proc/[0-9]*/stat"):
        try:
            content = open(stat_path).read()
        except OSError:
            continue  # process exited between glob and read
        fields = content.rsplit(") ", 1)[-1].split()
        if len(fields) >= 2 and fields[0] == "Z" and fields[1] == me:
            zombies.append(stat_path.split("/")[2])
    return zombies


@pytest.fixture(autouse=True)
def _no_ambient_backend(monkeypatch):
    """Tests control selection explicitly; the ambient env must not."""
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_FLEET_HOSTS", raising=False)
    set_default_backend(None)
    yield
    set_default_backend(None)
    drain_telemetry()


class TestRegistry:
    def test_three_backends_registered(self):
        assert backend_names() == ["fleet", "inline", "local-pool"]

    def test_create_returns_registered_classes(self):
        assert isinstance(create_backend("inline"), InlineBackend)
        assert isinstance(create_backend("local-pool"), LocalPoolBackend)
        assert isinstance(create_backend("fleet"), FleetBackend)

    def test_unknown_backend_names_the_choices(self):
        with pytest.raises(ValueError, match="unknown backend 'threads'"):
            create_backend("threads")
        with pytest.raises(ValueError, match="fleet, inline, local-pool"):
            create_backend("threads")

    def test_run_labeled_cells_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            run_labeled_cells(_grid(WellBehavedFactory()), backend="threads")


class TestResolvePrecedence:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "fleet")
        set_default_backend("local-pool")
        assert resolve_backend("inline") == "inline"

    def test_cli_default_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "fleet")
        set_default_backend("local-pool")
        assert resolve_backend(None) == "local-pool"

    def test_env_when_nothing_else(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "fleet")
        assert resolve_backend(None) == "fleet"

    def test_unset_means_automatic(self):
        assert resolve_backend(None) is None

    def test_explicit_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("threads")

    def test_set_default_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            set_default_backend("threads")


class TestAutomaticSelection:
    """backend=None preserves the pre-backend dispatch exactly."""

    def test_single_worker_runs_inline(self):
        run_labeled_cells(_grid(WellBehavedFactory()), workers=1)
        assert drain_telemetry()[-1].backend == "inline"

    def test_single_cell_runs_inline_despite_workers(self):
        run_labeled_cells(_grid(WellBehavedFactory())[:1], workers=4)
        assert drain_telemetry()[-1].backend == "inline"

    def test_multi_worker_multi_cell_uses_the_pool(self):
        run_labeled_cells(_grid(WellBehavedFactory()), workers=2)
        assert drain_telemetry()[-1].backend == "local-pool"

    def test_env_backend_overrides_automatic(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "inline")
        run_labeled_cells(_grid(WellBehavedFactory()), workers=2)
        assert drain_telemetry()[-1].backend == "inline"


class TestBackendInvariance:
    """Identical metrics and journal entries across all three backends."""

    def _run(self, backend, tmp_path, workers=2):
        journal_dir = tmp_path / backend
        outcomes = run_labeled_cells(
            _grid(WellBehavedFactory()),
            engine="fast",
            workers=workers,
            backend=backend,
            journal=str(journal_dir),
        )
        assert all(outcome.ok for outcome in outcomes)
        return outcomes, SweepJournal(journal_dir)

    def test_metrics_and_journal_keys_identical(self, tmp_path):
        inline, inline_journal = self._run("inline", tmp_path)
        pooled, pool_journal = self._run("local-pool", tmp_path)
        fleet, fleet_journal = self._run("fleet", tmp_path)

        assert [o.metrics for o in inline] == [o.metrics for o in pooled]
        assert [o.metrics for o in inline] == [o.metrics for o in fleet]

        keys = [o.identity.key() for o in inline]
        assert keys == [o.identity.key() for o in pooled]
        assert keys == [o.identity.key() for o in fleet]
        for key, outcome in zip(keys, inline):
            for journal in (inline_journal, pool_journal, fleet_journal):
                entry = journal.get(key)
                assert entry is not None
                assert journal.entry_metrics(entry) == outcome.metrics

    @pytest.mark.parametrize(
        "first,second",
        [("fleet", "inline"), ("inline", "fleet"), ("local-pool", "fleet")],
    )
    def test_cross_backend_resume(self, tmp_path, first, second):
        journal_dir = str(tmp_path / "journal")
        cells = _grid(WellBehavedFactory())
        initial = run_labeled_cells(
            cells, engine="fast", workers=2, backend=first, journal=journal_dir
        )
        assert all(outcome.ok for outcome in initial)
        resumed = run_labeled_cells(
            cells, engine="fast", workers=2, backend=second, journal=journal_dir
        )
        assert all(outcome.cached for outcome in resumed)
        assert [o.metrics for o in resumed] == [o.metrics for o in initial]


class TestFleetWorkerCommand:
    def test_local_uses_this_interpreter(self):
        assert worker_command("local") == [
            sys.executable, "-m", "repro.cli", "worker",
        ]

    def test_bare_endpoint_goes_over_ssh(self):
        argv = worker_command("user@box1")
        assert argv[:4] == ["ssh", "-o", "BatchMode=yes", "user@box1"]
        assert argv[-3:] == ["-m", "repro.cli", "worker"]

    def test_whitespace_template_used_verbatim(self):
        assert worker_command("kubectl exec pod -- python -m repro.cli worker") == [
            "kubectl", "exec", "pod", "--", "python", "-m", "repro.cli", "worker",
        ]


class TestFleetExecution:
    def test_cells_shard_across_workers(self):
        outcomes = run_labeled_cells(
            _grid(WellBehavedFactory()),
            engine="fast",
            workers=2,
            backend="fleet",
        )
        assert all(outcome.ok for outcome in outcomes)
        telemetry = drain_telemetry()[-1]
        assert telemetry.backend == "fleet"
        assert telemetry.workers == 2
        assert sum(telemetry.worker_cells.values()) == len(outcomes)
        assert set(telemetry.worker_cells) == {"local#0", "local#1"}
        assert {outcome.worker for outcome in outcomes} == {"local#0", "local#1"}

    def test_workers_torn_down_after_the_sweep(self):
        run_labeled_cells(
            _grid(WellBehavedFactory()), engine="fast", workers=2,
            backend="fleet",
        )
        assert live_workers() == 0

    def test_deterministic_failure_not_retried(self):
        outcomes = run_labeled_cells(
            [("curve", raise_for_2048, size, TRACES[0]) for size in SIZES],
            engine="fast",
            workers=2,
            backend="fleet",
        )
        failed = [outcome for outcome in outcomes if not outcome.ok]
        assert len(failed) == 1
        assert "poisoned parameter 2048" in failed[0].error
        assert failed[0].attempts == 1  # captured worker-side, no crash retry
        assert all(outcome.ok for outcome in outcomes if outcome is not failed[0])

    def test_sigkilled_worker_retires_and_cell_redispatches(self, tmp_path):
        sentinel = tmp_path / "armed"
        sentinel.write_text("armed\n")
        outcomes = run_labeled_cells(
            _grid(KillOnceFactory(poison=2048, sentinel=str(sentinel))),
            engine="fast",
            workers=2,
            backend="fleet",
        )
        assert all(outcome.ok for outcome in outcomes)
        assert not sentinel.exists()
        killed = [o for o in outcomes if o.identity.parameter == 2048]
        assert any(o.attempts > 1 for o in killed)
        telemetry = drain_telemetry()[-1]
        assert telemetry.pool_restarts >= 1
        assert live_workers() == 0

    def test_poisoned_cell_fails_with_worker_attribution(self):
        outcomes = run_labeled_cells(
            _grid(KillAlwaysFactory(poison=2048)),
            engine="fast",
            workers=2,
            backend="fleet",
            pool_retries=1,
        )
        failed = [outcome for outcome in outcomes if not outcome.ok]
        assert failed, "the poisoned cells must fail once the budget is spent"
        for outcome in failed:
            assert outcome.identity.parameter == 2048
            assert "BrokenFleetWorker" in outcome.error
            assert "died while executing this cell" in outcome.error
            assert "exit code" in outcome.error
            assert outcome.worker  # names the worker that died
            assert outcome.attempts == 2  # pool_retries=1 -> two attempts
        survivors = [outcome for outcome in outcomes if outcome.ok]
        assert len(survivors) == len(outcomes) - len(failed) > 0

    def test_never_ready_endpoint_retired_without_respawn_loop(self, monkeypatch):
        bad = f"{sys.executable} -c import#sys.exit(1)"
        monkeypatch.setenv("REPRO_FLEET_HOSTS", f"local,{bad}")
        outcomes = run_labeled_cells(
            _grid(WellBehavedFactory()),
            engine="fast",
            backend="fleet",
        )
        assert all(outcome.ok for outcome in outcomes)
        telemetry = drain_telemetry()[-1]
        # Every cell lands on the one good worker; the bad endpoint is
        # retired on its first death, never respawned.
        assert set(telemetry.worker_cells) == {"local#0"}
        assert telemetry.pool_restarts == 0

    def test_all_endpoints_dead_fails_remaining_cells(self, monkeypatch):
        bad = f"{sys.executable} -c import#sys.exit(1)"
        monkeypatch.setenv("REPRO_FLEET_HOSTS", bad)
        outcomes = run_labeled_cells(
            _grid(WellBehavedFactory()),
            engine="fast",
            backend="fleet",
        )
        assert not any(outcome.ok for outcome in outcomes)
        assert all(
            "no live fleet workers remain" in outcome.error
            for outcome in outcomes
            if outcome.error and "BrokenFleet" in outcome.error
        )

    def test_unpicklable_payloads_fail_fast_without_hanging(self):
        # Regression: a cell whose payload fails to pickle resolves at
        # dispatch without ever occupying a worker, so a sweep where
        # nothing gets in flight must terminate instead of blocking on
        # the event queue forever.  One worker and several bad cells is
        # the sharp case: the worker's single ``ready`` event cannot
        # unblock more than one scheduling pass.
        bad = [("bad", lambda size: None, size, TRACES[0]) for size in SIZES]
        done = {}

        def run():
            done["bad"] = run_labeled_cells(
                bad, engine="fast", workers=1, backend="fleet"
            )
            done["mixed"] = run_labeled_cells(
                bad + _grid(WellBehavedFactory()),
                engine="fast",
                workers=2,
                backend="fleet",
            )

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        thread.join(timeout=60.0)
        assert not thread.is_alive(), "fleet sweep hung on unpicklable payloads"
        assert all("pickle" in o.error for o in done["bad"])
        mixed = done["mixed"]
        assert all(
            "pickle" in o.error
            for o in mixed if o.identity.label == "bad"
        )
        assert all(o.ok for o in mixed if o.identity.label == "curve")

    def test_per_cell_timeout_kills_only_the_stuck_cell(self):
        outcomes = run_labeled_cells(
            _grid(SlowFactory(poison=2048)),
            engine="fast",
            workers=2,
            backend="fleet",
            timeout=3.0,
        )
        timed_out = [outcome for outcome in outcomes if not outcome.ok]
        assert timed_out
        for outcome in timed_out:
            assert outcome.identity.parameter == 2048
            assert "per-cell timeout (worker terminated)" in outcome.error
        assert all(
            outcome.ok for outcome in outcomes
            if outcome.identity.parameter != 2048
        )
        # Timeout-killed workers must be reaped, not left defunct: a
        # long-lived serve daemon accumulates one zombie per timeout
        # otherwise.
        assert _zombie_children() == []


class TestWorkerMain:
    """The NDJSON protocol loop, driven over in-memory streams."""

    def _run(self, requests):
        stdin = io.StringIO("".join(json.dumps(r) + "\n" for r in requests))
        stdout = io.StringIO()
        code = worker_main(stdin=stdin, stdout=stdout)
        events = [json.loads(line) for line in stdout.getvalue().splitlines()]
        return code, events

    def test_ready_handshake_comes_first(self):
        code, events = self._run([])
        assert code == 0
        assert events[0]["event"] == "ready"
        assert events[0]["pid"] == os.getpid()
        assert events[0]["host"]

    def test_ping_pong(self):
        _, events = self._run([{"op": "ping", "id": 7}])
        assert {"event": "pong", "id": 7} in events

    def test_shutdown_stops_the_loop(self):
        _, events = self._run([{"op": "shutdown"}, {"op": "ping", "id": 9}])
        assert not any(e.get("id") == 9 for e in events)

    def test_malformed_line_answers_error_and_survives(self):
        stdin = io.StringIO('this is not json\n{"op": "ping", "id": 1}\n')
        stdout = io.StringIO()
        assert worker_main(stdin=stdin, stdout=stdout) == 0
        events = [json.loads(line) for line in stdout.getvalue().splitlines()]
        kinds = [e["event"] for e in events]
        assert kinds == ["ready", "error", "pong"]
        assert "malformed request line" in events[1]["error"]

    def test_unknown_op_answers_error(self):
        _, events = self._run([{"op": "dance", "id": 3}])
        assert any(
            e["event"] == "error" and "unknown op" in e["error"] for e in events
        )

    def test_cell_request_round_trips(self):
        import base64
        import pickle

        payload = base64.b64encode(
            pickle.dumps((WellBehavedFactory(), 1024, TRACES[0], None))
        ).decode("ascii")
        _, events = self._run(
            [{"op": "cell", "id": 5, "engine": "fast", "payload": payload}]
        )
        results = [e for e in events if e["event"] == "result"]
        assert len(results) == 1
        assert results[0]["id"] == 5
        assert results[0]["ok"] is True
        assert 0.0 < results[0]["metrics"]["miss_rate"] <= 1.0
        assert results[0]["seconds"] >= 0.0

    def test_cell_failure_captured_not_fatal(self):
        import base64
        import pickle

        payload = base64.b64encode(
            pickle.dumps((raise_for_2048, 2048, TRACES[0], None))
        ).decode("ascii")
        _, events = self._run(
            [
                {"op": "cell", "id": 6, "engine": "fast", "payload": payload},
                {"op": "ping", "id": 8},
            ]
        )
        results = [e for e in events if e["event"] == "result"]
        assert results[0]["ok"] is False
        assert "RuntimeError: poisoned parameter 2048" in results[0]["error"]
        assert {"event": "pong", "id": 8} in events  # loop survived
