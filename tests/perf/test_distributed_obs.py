"""Distributed observability across sweep backends.

The differential contract: a fleet (or local-pool) run of a grid must
produce (1) one merged trace whose worker-side ``simulate`` /
``trace_gen`` spans nest under the parent's ``cell`` spans with
``worker=``/``pid=`` attribution, and (2) merged ``fsm.*`` counters
exactly equal to an inline run of the same grid — the paper's
dynamic-exclusion state machine fires identically wherever the cell
executes, so any drift is a propagation bug, not physics.
"""

import os

import pytest

from repro import obs
from repro.experiments.common import StandardFactory
from repro.obs import metrics as obs_metrics, tracing as obs_tracing
from repro.perf.parallel import run_labeled_cells
from repro.perf.trace_cache import TraceKey

FSM_SERIES = ("fsm.sticky_saves", "fsm.hit_last_loads", "fsm.exclusion_flips")


def _grid():
    factory = StandardFactory("dynamic-exclusion", 4)
    trace = TraceKey("espresso", max_refs=20_000)
    return [(f"de@{64 << i}", factory, 64 << i, trace) for i in range(3)]


@pytest.fixture(autouse=True)
def _clean_process_state():
    yield
    obs_tracing.uninstall_tracer()
    obs_metrics.uninstall_registry()


def _traced_run(tmp_path, backend):
    tracer = obs.install_tracer(obs.Tracer(tmp_path))
    registry = obs_metrics.install_registry(obs_metrics.MetricsRegistry())
    outcomes = run_labeled_cells(
        _grid(), engine="reference", workers=2, backend=backend, progress=False
    )
    obs.uninstall_tracer()
    tracer.close()
    obs_metrics.uninstall_registry()
    assert all(outcome.ok for outcome in outcomes)
    return obs.read_spans(tmp_path / obs.TRACE_FILENAME), registry, outcomes


def _inline_fsm_totals():
    registry = obs_metrics.install_registry(obs_metrics.MetricsRegistry())
    outcomes = run_labeled_cells(
        _grid(), engine="reference", workers=1, backend="inline", progress=False
    )
    obs_metrics.uninstall_registry()
    assert all(outcome.ok for outcome in outcomes)
    return {name: registry.total(name) for name in FSM_SERIES}


class TestFleetDistributedObs:
    def test_merged_trace_and_fsm_parity(self, tmp_path):
        spans, registry, outcomes = _traced_run(tmp_path, "fleet")
        by_id = {span.span_id: span for span in spans}
        cells = [span for span in spans if span.name == "cell"]
        assert len(cells) == 3

        # Worker-side sub-phases arrived and nest under the cell spans
        # via the worker's cell_exec bracket.
        children = [
            span for span in spans if span.name in ("simulate", "trace_gen")
        ]
        assert children, "no worker spans were shipped home"
        for span in children:
            parent = by_id[span.parent_id]
            assert parent.name == "cell_exec"
            assert by_id[parent.parent_id].name == "cell"
            assert span.attrs["worker"].startswith("local#")
            assert isinstance(span.attrs["pid"], int)
            assert span.attrs["pid"] != os.getpid()
            assert span.start >= parent.start
        # The worker's cell_exec bracket accounts for each cell's wall
        # time (the CI smoke pins >= 90% on a real fig05 run).
        for cell in cells:
            kids = [
                s for s in spans
                if s.parent_id == cell.span_id and "pid" in s.attrs
            ]
            assert kids, f"cell {cell.attrs.get('label')} shipped no spans"
            coverage = sum(k.duration for k in kids) / max(cell.duration, 1e-9)
            assert coverage > 0.9

        # Merged fleet FSM counters == the same grid run inline.
        inline = _inline_fsm_totals()
        for name in FSM_SERIES:
            assert registry.total(name) == inline[name], name
        # Attribution survives: each per-worker slice is a labelled series.
        exported = {
            (entry["name"], entry["labels"].get("worker"))
            for entry in registry.export()
            if entry["name"] in FSM_SERIES
        }
        assert all(worker for _, worker in exported)

    def test_cell_metrics_unaffected_by_tracing(self, tmp_path):
        _, _, traced = _traced_run(tmp_path, "fleet")
        bare = run_labeled_cells(
            _grid(), engine="reference", workers=2, backend="fleet",
            progress=False,
        )
        assert [outcome.miss_rate for outcome in traced] == [
            outcome.miss_rate for outcome in bare
        ]


class TestLocalPoolDistributedObs:
    def test_pool_workers_ship_spans_and_metrics(self, tmp_path):
        spans, registry, _ = _traced_run(tmp_path, "local-pool")
        children = [
            span for span in spans if span.name in ("simulate", "trace_gen")
        ]
        assert children, "pool workers shipped no spans"
        for span in children:
            # Pool cells carry pid-based attribution (no fleet worker id).
            assert str(span.attrs["worker"]).startswith("pid-")
            assert span.attrs["pid"] != os.getpid()
        inline = _inline_fsm_totals()
        for name in FSM_SERIES:
            assert registry.total(name) == inline[name], name


class TestTracingOffIsFree:
    def test_no_obs_payload_without_tracer(self):
        from repro.perf.cells import cell_task

        factory = StandardFactory("dynamic-exclusion", 4)
        trace = TraceKey("espresso", max_refs=5_000)
        result = cell_task(factory, 64, trace, "reference")
        assert len(result) == 2  # the two-tuple contract is unchanged

    def test_worker_protocol_omits_obs_key(self):
        import base64
        import pickle

        from repro.perf.worker import _run_cell

        factory = StandardFactory("dynamic-exclusion", 4)
        trace = TraceKey("espresso", max_refs=5_000)
        payload = base64.b64encode(
            pickle.dumps((factory, 64, trace, None))
        ).decode("ascii")
        bare = _run_cell({"op": "cell", "id": 1, "engine": "reference",
                          "payload": payload})
        assert bare["ok"] and "obs" not in bare
        traced = _run_cell({"op": "cell", "id": 2, "engine": "reference",
                            "payload": payload,
                            "obs": {"version": 1, "trace_id": "t"}})
        assert traced["ok"]
        assert traced["obs"]["trace_id"] == "t"
        assert any(
            entry["name"] == "simulate" for entry in traced["obs"]["spans"]
        )

    def test_worker_failure_still_ships_capture(self):
        import base64
        import pickle

        from repro.perf.worker import _run_cell
        from tests.perf.fleet_helpers import raise_for_2048

        trace = TraceKey("espresso", max_refs=5_000)
        payload = base64.b64encode(
            pickle.dumps((raise_for_2048, 2048, trace, None))
        ).decode("ascii")
        result = _run_cell({"op": "cell", "id": 3, "engine": "reference",
                            "payload": payload,
                            "obs": {"version": 1, "trace_id": "t"}})
        assert not result["ok"]
        assert result["obs"]["trace_id"] == "t"
