"""Module-level factories for the fleet backend tests.

Fleet workers are *fresh* ``python -m repro.cli worker`` processes (no
fork), so everything a cell pickles must resolve by qualified module
name on the worker's import path.  These live in their own module —
importable as ``tests.perf.fleet_helpers`` from the repo root, which is
on the worker's path because ``python -m`` prepends the parent's
working directory — instead of inside a test file that pytest may
import under a rewritten name.
"""

import os
import signal
from dataclasses import dataclass

from repro.caches.direct_mapped import DirectMappedCache
from repro.caches.geometry import CacheGeometry


@dataclass(frozen=True)
class WellBehavedFactory:
    """A clean direct-mapped factory (the fleet green path)."""

    line_size: int = 4

    def __call__(self, size: object) -> DirectMappedCache:
        return DirectMappedCache(CacheGeometry(int(size), self.line_size))  # type: ignore[call-overload]


@dataclass(frozen=True)
class KillOnceFactory:
    """SIGKILLs its worker for the poisoned parameter, exactly once.

    The sentinel file arms the kill; the factory removes it *before*
    dying so the re-dispatched attempt (on a surviving or respawned
    worker) completes.  Models an OOM-killed worker that behaves after
    a restart.
    """

    poison: int
    sentinel: str

    def __call__(self, size: object) -> DirectMappedCache:
        if int(size) == self.poison and os.path.exists(self.sentinel):  # type: ignore[call-overload]
            os.remove(self.sentinel)
            os.kill(os.getpid(), signal.SIGKILL)
        return DirectMappedCache(CacheGeometry(int(size), 4))  # type: ignore[call-overload]


@dataclass(frozen=True)
class KillAlwaysFactory:
    """SIGKILLs its worker for the poisoned parameter, every attempt.

    Exhausts the per-cell crash budget so the sweep must fail the cell
    with exact worker attribution instead of retrying forever.
    """

    poison: int

    def __call__(self, size: object) -> DirectMappedCache:
        if int(size) == self.poison:  # type: ignore[call-overload]
            os.kill(os.getpid(), signal.SIGKILL)
        return DirectMappedCache(CacheGeometry(int(size), 4))  # type: ignore[call-overload]


def raise_for_2048(size):
    """A deterministic failure: raises for parameter 2048, else clean."""
    if int(size) == 2048:
        raise RuntimeError(f"poisoned parameter {size}")
    return DirectMappedCache(CacheGeometry(int(size), 4))


@dataclass(frozen=True)
class SlowFactory:
    """Sleeps forever (well past any test timeout) for the poison."""

    poison: int
    delay: float = 60.0

    def __call__(self, size: object) -> DirectMappedCache:
        if int(size) == self.poison:  # type: ignore[call-overload]
            import time

            time.sleep(self.delay)
        return DirectMappedCache(CacheGeometry(int(size), 4))  # type: ignore[call-overload]
