"""Tests for the repro.cli command line tools."""

import pytest

from repro.cli import main
from repro.trace.io import load_din, save_din
from repro.trace.trace import Trace


class TestTraceCommand:
    def test_writes_din_file(self, tmp_path, capsys):
        out = tmp_path / "t.din"
        assert main(["trace", "tomcatv", "--refs", "500", "--out", str(out)]) == 0
        trace = load_din(out)
        assert len(trace) == 500
        assert "wrote" in capsys.readouterr().out

    def test_stdout_output(self, capsys):
        assert main(["trace", "tomcatv", "--refs", "10"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 10

    def test_data_kind(self, tmp_path):
        out = tmp_path / "d.din"
        main(["trace", "tomcatv", "--kind", "data", "--refs", "100", "--out", str(out)])
        trace = load_din(out)
        assert all(r.kind.is_data for r in trace)

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["trace", "quake", "--refs", "10"])


class TestSimulateCommand:
    def test_simulate_benchmark_by_name(self, capsys):
        assert main(["simulate", "tomcatv", "--refs", "2000",
                     "--size", "1024", "--line", "4"]) == 0
        out = capsys.readouterr().out
        assert "misses" in out
        assert "direct" in out

    def test_simulate_din_file(self, tmp_path, capsys):
        path = tmp_path / "t.din"
        save_din(Trace([0, 4, 0, 4], [0] * 4), path)
        assert main(["simulate", str(path), "--size", "64", "--line", "4"]) == 0
        out = capsys.readouterr().out
        assert "accesses   : 4" in out

    @pytest.mark.parametrize("policy", [
        "direct", "exclusion", "exclusion-hashed", "optimal",
        "lru", "fifo", "random", "victim", "stream",
    ])
    def test_every_policy_runs(self, policy, capsys):
        assert main(["simulate", "tomcatv", "--refs", "1000",
                     "--size", "1024", "--policy", policy]) == 0
        assert "miss" in capsys.readouterr().out

    def test_exclusion_reports_bypasses(self, tmp_path, capsys):
        path = tmp_path / "t.din"
        # Conflict pair in a 64B cache; assume-miss polarity forces a
        # bypass immediately.
        save_din(Trace([0, 64, 0, 64], [0] * 4), path)
        assert main(["simulate", str(path), "--size", "64", "--line", "4",
                     "--policy", "exclusion", "--assume-miss"]) == 0
        assert "bypasses" in capsys.readouterr().out

    def test_long_line_exclusion_uses_buffer(self, tmp_path, capsys):
        path = tmp_path / "t.din"
        save_din(Trace([0, 4, 8, 12], [0] * 4), path)
        assert main(["simulate", str(path), "--size", "64", "--line", "16",
                     "--policy", "exclusion"]) == 0
        assert "buffer hits" in capsys.readouterr().out

    def test_missing_trace_file(self):
        with pytest.raises(SystemExit, match="neither a benchmark"):
            main(["simulate", "/nonexistent/trace.din"])


class TestClassifyCommand:
    def test_classify_file(self, tmp_path, capsys):
        path = tmp_path / "t.din"
        save_din(Trace([0, 64, 0, 64], [0] * 4), path)
        assert main(["classify", str(path), "--size", "64", "--line", "4"]) == 0
        out = capsys.readouterr().out
        assert "compulsory : 2" in out
        assert "conflict   : 2" in out

    def test_classify_benchmark(self, capsys):
        assert main(["classify", "tomcatv", "--refs", "2000", "--size", "1024"]) == 0
        assert "total" in capsys.readouterr().out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["explode"])


class TestConflictsCommand:
    def test_conflicts_on_file(self, tmp_path, capsys):
        path = tmp_path / "t.din"
        save_din(Trace([0, 64] * 10, [0] * 20), path)
        assert main(["conflicts", str(path), "--size", "64", "--line", "4"]) == 0
        out = capsys.readouterr().out
        assert "ping-pong fraction" in out
        assert "0x0 <-> 0x10" in out

    def test_conflicts_on_benchmark(self, capsys):
        assert main(["conflicts", "tomcatv", "--refs", "2000",
                     "--size", "1024", "--top", "3"]) == 0
        assert "conflicting sets" in capsys.readouterr().out


class TestSimulateEngineFlags:
    def test_engine_fast_runs(self, capsys):
        assert main(["simulate", "gcc", "--refs", "2000", "--engine", "fast"]) == 0
        assert "misses" in capsys.readouterr().out

    def test_fast_matches_reference(self, capsys):
        assert main(["simulate", "gcc", "--refs", "2000", "--engine", "fast"]) == 0
        fast = capsys.readouterr().out
        assert main(["simulate", "gcc", "--refs", "2000", "--engine", "reference"]) == 0
        reference = capsys.readouterr().out
        assert fast == reference

    def test_unknown_engine_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "gcc", "--refs", "2000", "--engine", "warp"])

    def test_workers_flag_sets_default(self):
        from repro.perf import parallel

        try:
            assert main(["simulate", "gcc", "--refs", "2000", "--workers", "2"]) == 0
            assert parallel.resolve_workers() == 2
        finally:
            parallel.set_default_workers(None)

    def test_zero_workers_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "gcc", "--refs", "2000", "--workers", "0"])
        assert "at least 1" in capsys.readouterr().err


class TestEagerEnvironmentValidation:
    def test_bad_repro_workers_fails_at_startup(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_WORKERS", "banana")
        with pytest.raises(SystemExit):
            main(["simulate", "gcc", "--refs", "2000"])
        assert "REPRO_WORKERS" in capsys.readouterr().err

    def test_valid_repro_workers_accepted(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_WORKERS", "1")
        assert main(["simulate", "gcc", "--refs", "2000"]) == 0


class TestObsSummarizeCommand:
    def _make_run(self, directory):
        from repro import obs

        with obs.Tracer(directory) as tracer:
            with tracer.span("experiment", spec="fig04"):
                with tracer.span("cell", label="dm@1024", engine="fast"):
                    pass

    def test_summarize_renders_a_run(self, tmp_path, capsys):
        self._make_run(tmp_path / "fig04")
        assert main(["obs", "summarize", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "experiment" in out
        assert "cell" in out
        assert "slowest cells" in out

    def test_top_flag_limits_cells(self, tmp_path, capsys):
        self._make_run(tmp_path)
        assert main(["obs", "summarize", str(tmp_path), "--top", "1"]) == 0
        assert "top 1 slowest cells" in capsys.readouterr().out

    def test_missing_directory_fails(self, tmp_path):
        with pytest.raises(SystemExit, match="no such trace directory"):
            main(["obs", "summarize", str(tmp_path / "absent")])

    def test_directory_without_runs_fails(self, tmp_path):
        with pytest.raises(SystemExit, match="trace.jsonl"):
            main(["obs", "summarize", str(tmp_path)])

    def test_requires_a_subcommand(self, capsys):
        with pytest.raises(SystemExit):
            main(["obs"])


class TestObservabilityEnvValidation:
    def test_bad_repro_log_level_fails_at_startup(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "loud")
        with pytest.raises(SystemExit):
            main(["trace", "tomcatv", "--refs", "10"])
        assert "REPRO_LOG_LEVEL" in capsys.readouterr().err

    def test_bad_repro_profile_fails_at_startup(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_PROFILE", "maybe")
        with pytest.raises(SystemExit):
            main(["trace", "tomcatv", "--refs", "10"])
        assert "REPRO_PROFILE" in capsys.readouterr().err


class TestStoreCompactCommand:
    def _seed_store(self, directory):
        from repro.store import open_store

        store = open_store(directory)
        for i in range(6):
            store.record(f"{i:08x}aa", {"label": "dm"}, 0.1 + i / 100, 0.0)
        return store

    def test_compacts_and_reports(self, tmp_path, capsys):
        store_dir = tmp_path / "results"
        self._seed_store(store_dir)
        assert main(["store", "compact", "--store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "generation 1" in out
        assert "6 cells" in out
        assert (store_dir / "store_manifest.json").exists()

    def test_shards_flag(self, tmp_path, capsys):
        store_dir = tmp_path / "results"
        self._seed_store(store_dir)
        assert main(
            ["store", "compact", "--store", str(store_dir), "--shards", "2"]
        ) == 0
        assert "shard" in capsys.readouterr().out

    def test_store_dir_from_environment(self, tmp_path, monkeypatch, capsys):
        store_dir = tmp_path / "results"
        self._seed_store(store_dir)
        monkeypatch.setenv("REPRO_SERVE_STORE", str(store_dir))
        assert main(["store", "compact"]) == 0
        assert "generation 1" in capsys.readouterr().out

    def test_missing_store_dir_fails(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_STORE", raising=False)
        with pytest.raises(SystemExit, match="--store"):
            main(["store", "compact"])

    def test_compacted_store_round_trips(self, tmp_path):
        from repro.store import open_store

        store_dir = tmp_path / "results"
        before = {
            key: self._seed_store(store_dir).metrics(key)
            for key in self._seed_store(store_dir).keys()
        }
        assert main(["store", "compact", "--store", str(store_dir)]) == 0
        reloaded = open_store(store_dir)
        assert {key: reloaded.metrics(key) for key in reloaded.keys()} == before
