"""Tests for the synthetic program model."""

import pytest

from repro.trace.reference import RefKind
from repro.workloads.data_model import ScalarAccess, StackAccess
from repro.workloads.program import (
    Block,
    Call,
    Loop,
    Procedure,
    Program,
    Seq,
    Switch,
)


def simple_program(**kwargs):
    main = Procedure("main", [Block(4)])
    return Program([main], entry="main", **kwargs)


class TestLayout:
    def test_blocks_get_sequential_addresses(self):
        block_a = Block(2)
        block_b = Block(3)
        program = Program(
            [Procedure("main", [block_a, block_b])], entry="main", code_base=0x1000
        )
        assert block_a.address == 0x1000
        assert block_b.address == 0x1000 + 8
        assert program.code_size == 20

    def test_procedures_are_contiguous_with_gap(self):
        a = Procedure("a", [Block(4)])
        b = Procedure("b", [Block(4)])
        program = Program([a, b, Procedure("main", [Call("a")])],
                          entry="main", code_base=0, proc_gap=16)
        assert program.proc_addresses["a"] == 0
        assert program.proc_addresses["b"] == 16 + 16

    def test_loop_body_laid_out_once(self):
        block = Block(4)
        program = Program(
            [Procedure("main", [Loop(block, 10)])], entry="main", code_base=0
        )
        assert program.code_size == 16

    def test_switch_children_all_laid_out(self):
        x, y = Block(2), Block(2)
        program = Program(
            [Procedure("main", [Switch([x, y])])], entry="main", code_base=0
        )
        assert x.address == 0
        assert y.address == 8

    def test_duplicate_procedure_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Program([Procedure("p", [Block(1)]), Procedure("p", [Block(1)])],
                    entry="p")

    def test_unknown_entry_rejected(self):
        with pytest.raises(ValueError, match="entry"):
            Program([Procedure("p", [Block(1)])], entry="main")


class TestEmission:
    def test_block_emits_sequential_ifetches(self):
        program = simple_program(code_base=0x100)
        trace = program.trace()
        assert [r.addr for r in trace] == [0x100, 0x104, 0x108, 0x10C]
        assert all(r.kind is RefKind.IFETCH for r in trace)

    def test_loop_repeats_body(self):
        main = Procedure("main", [Loop(Block(2), trips=3)])
        trace = Program([main], entry="main", code_base=0).trace()
        assert len(trace) == 6

    def test_loop_trip_range_is_seed_deterministic(self):
        def build():
            main = Procedure("main", [Loop(Block(1), trips=(1, 10))])
            return Program([main], entry="main", seed=9).trace()

        assert build() == build()

    def test_call_jumps_to_callee(self):
        callee = Procedure("f", [Block(1)])
        main = Procedure("main", [Block(1), Call("f"), Block(1)])
        program = Program([callee, main], entry="main", code_base=0, proc_gap=0)
        addrs = [r.addr for r in program.trace()]
        # f is laid out first at 0; main's blocks follow at 4 and 8.
        assert addrs == [4, 0, 8]

    def test_call_to_unknown_procedure_raises(self):
        main = Procedure("main", [Call("ghost")])
        program = Program([main], entry="main")
        with pytest.raises(ValueError, match="undefined procedure"):
            program.trace()

    def test_recursion_bounded_by_max_call_depth(self):
        rec = Procedure("rec", [Block(1), Call("rec")])
        program = Program([rec], entry="rec", max_call_depth=5)
        trace = program.trace()
        assert len(trace) == 5

    def test_switch_selects_single_child(self):
        x, y = Block(1), Block(1)
        main = Procedure("main", [Switch([x, y])])
        trace = Program([main], entry="main").trace()
        assert len(trace) == 1

    def test_switch_weights_bias_selection(self):
        x, y = Block(1), Block(2)
        main = Procedure("main", [Loop(Switch([x, y], weights=[0.0, 1.0]), 10)])
        trace = Program([main], entry="main").trace()
        assert len(trace) == 20  # always the 2-word child

    def test_switch_validation(self):
        with pytest.raises(ValueError):
            Switch([])
        with pytest.raises(ValueError):
            Switch([Block(1)], weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            Switch([Block(1)], weights=[0.0])

    def test_max_refs_truncates(self):
        main = Procedure("main", [Loop(Block(10), 100)])
        trace = Program([main], entry="main").trace(max_refs=25)
        assert len(trace) == 25

    def test_repeat_runs_entry_multiple_times(self):
        main = Procedure("main", [Block(3)])
        trace = Program([main], entry="main").trace(repeat=4)
        assert len(trace) == 12

    def test_trace_is_deterministic(self):
        main = Procedure("main", [Loop(Block(2), trips=(1, 5))])
        program = Program([main], entry="main", seed=3)
        assert program.trace() == program.trace()

    def test_trace_name(self):
        assert simple_program().trace(name="x").name == "x"


class TestDataIntegration:
    def test_block_data_patterns_emit(self):
        scalar = ScalarAccess(0x9000)
        main = Procedure("main", [Block(4, data=[scalar])])
        trace = Program([main], entry="main").trace()
        data = [r for r in trace if r.kind.is_data]
        assert len(data) == 1
        assert data[0].addr == 0x9000

    def test_stack_follows_call_depth(self):
        stack = StackAccess(0x8000, frame_size=64, refs_per_visit=1, seed=1)
        inner = Procedure("inner", [Block(1, data=[stack])])
        main = Procedure("main", [Block(1, data=[stack]), Call("inner")])
        program = Program([inner, main], entry="main", stack=stack)
        trace = program.trace()
        data = [r.addr for r in trace if r.kind.is_data]
        # main runs at depth 1, inner at depth 2.
        assert 0x8000 + 64 <= data[0] < 0x8000 + 128
        assert 0x8000 + 128 <= data[1] < 0x8000 + 192

    def test_patterns_reset_between_traces(self):
        scalar = ScalarAccess(0x9000, write_every=2)
        main = Procedure("main", [Block(1, data=[scalar])])
        program = Program([main], entry="main")
        first = program.trace()
        second = program.trace()
        assert first == second


class TestValidation:
    def test_negative_block_size_rejected(self):
        with pytest.raises(ValueError):
            Block(-1)

    def test_bad_trip_range_rejected(self):
        with pytest.raises(ValueError):
            Loop(Block(1), trips=(5, 2))

    def test_negative_trips_rejected(self):
        with pytest.raises(ValueError):
            Loop(Block(1), trips=-1)
