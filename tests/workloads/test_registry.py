"""Tests for the benchmark registry."""

import pytest

from repro.trace.reference import RefKind
from repro.workloads.registry import (
    DEFAULT_MAX_REFS,
    benchmark_names,
    build_program,
    data_trace,
    describe,
    instruction_trace,
    mixed_trace,
    trace_by_kind,
)


class TestLookup:
    def test_names_sorted(self):
        names = benchmark_names()
        assert names == sorted(names)
        assert "gcc" in names

    def test_describe(self):
        assert describe("spice") == "circuit simulation"

    def test_describe_unknown(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            describe("nginx")

    def test_build_program(self):
        program = build_program("tomcatv")
        assert program.code_size > 0

    def test_build_unknown(self):
        with pytest.raises(ValueError):
            build_program("doom")


class TestTraceKinds:
    def test_instruction_trace_pure(self):
        trace = instruction_trace("li", 3_000)
        assert len(trace) == 3_000
        assert all(r.kind is RefKind.IFETCH for r in trace)

    def test_data_trace_pure(self):
        trace = data_trace("li", 3_000)
        assert len(trace) > 0
        assert all(r.kind.is_data for r in trace)

    def test_mixed_trace_budget(self):
        assert len(mixed_trace("li", 3_000)) == 3_000

    def test_trace_names(self):
        assert instruction_trace("li", 100).name == "li"
        assert data_trace("li", 100).name == "li"
        assert mixed_trace("li", 100).name == "li"

    def test_trace_by_kind_dispatch(self):
        instr = trace_by_kind("li", "instruction", 500)
        assert all(r.kind is RefKind.IFETCH for r in instr)
        data = trace_by_kind("li", "data", 500)
        assert all(r.kind.is_data for r in data)
        mixed = trace_by_kind("li", "mixed", 500)
        assert len(mixed) == 500

    def test_trace_by_kind_unknown(self):
        with pytest.raises(ValueError, match="unknown trace kind"):
            trace_by_kind("li", "video", 100)

    def test_default_budget_is_sane(self):
        assert DEFAULT_MAX_REFS >= 100_000


class TestUnboundedBudget:
    def test_none_budget_runs_program_once(self):
        # tomcatv's program is finite; None must terminate with one run.
        trace = mixed_trace("tomcatv", max_refs=None)
        assert 0 < len(trace) < 5_000_000

    def test_none_budget_instruction_filter(self):
        trace = instruction_trace("tomcatv", max_refs=None)
        assert len(trace) > 0
        assert all(r.kind is RefKind.IFETCH for r in trace[:100])
