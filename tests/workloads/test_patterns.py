"""Tests for the Section-3 conflict microkernels."""

import pytest

from repro.caches.geometry import CacheGeometry
from repro.trace.reference import RefKind
from repro.workloads.patterns import (
    between_loops,
    conflicting_addresses,
    loop_level,
    three_way,
    within_loop,
)

GEOMETRY = CacheGeometry(1024, 4)


class TestConflictingAddresses:
    def test_all_map_to_same_set(self):
        addrs = conflicting_addresses(GEOMETRY, 4)
        sets = {GEOMETRY.set_index(a) for a in addrs}
        assert len(sets) == 1

    def test_addresses_are_distinct_lines(self):
        addrs = conflicting_addresses(GEOMETRY, 4)
        lines = {GEOMETRY.line_address(a) for a in addrs}
        assert len(lines) == 4

    def test_set_index_parameter(self):
        addrs = conflicting_addresses(GEOMETRY, 2, set_index=5)
        assert all(GEOMETRY.set_index(a) == 5 for a in addrs)

    def test_set_index_out_of_range(self):
        with pytest.raises(ValueError):
            conflicting_addresses(GEOMETRY, 2, set_index=10_000)

    def test_requires_direct_mapped(self):
        with pytest.raises(ValueError):
            conflicting_addresses(CacheGeometry(1024, 4, associativity=2), 2)

    def test_conflicts_survive_in_smaller_caches(self):
        """Addresses one cache-size apart also conflict at half size."""
        addrs = conflicting_addresses(GEOMETRY, 2)
        half = CacheGeometry(512, 4)
        assert half.set_index(addrs[0]) == half.set_index(addrs[1])


class TestPatternShapes:
    def test_between_loops_sequence(self):
        trace = between_loops(GEOMETRY, inner=2, outer=2)
        a, b = conflicting_addresses(GEOMETRY, 2)
        assert [r.addr for r in trace] == [a, a, b, b, a, a, b, b]

    def test_loop_level_sequence(self):
        trace = loop_level(GEOMETRY, inner=3, outer=2)
        a, b = conflicting_addresses(GEOMETRY, 2)
        assert [r.addr for r in trace] == [a, a, a, b, a, a, a, b]

    def test_within_loop_sequence(self):
        trace = within_loop(GEOMETRY, trips=3)
        a, b = conflicting_addresses(GEOMETRY, 2)
        assert [r.addr for r in trace] == [a, b, a, b, a, b]

    def test_three_way_sequence(self):
        trace = three_way(GEOMETRY, trips=2)
        a, b, c = conflicting_addresses(GEOMETRY, 3)
        assert [r.addr for r in trace] == [a, b, c, a, b, c]

    def test_all_instruction_kind(self):
        for trace in [between_loops(GEOMETRY), loop_level(GEOMETRY),
                      within_loop(GEOMETRY), three_way(GEOMETRY)]:
            assert all(r.kind is RefKind.IFETCH for r in trace)

    def test_lengths(self):
        assert len(between_loops(GEOMETRY, 10, 10)) == 200
        assert len(loop_level(GEOMETRY, 10, 10)) == 110
        assert len(within_loop(GEOMETRY, 10)) == 20
        assert len(three_way(GEOMETRY, 10)) == 30

    def test_names(self):
        assert between_loops(GEOMETRY).name == "between-loops"
        assert loop_level(GEOMETRY).name == "loop-level"
        assert within_loop(GEOMETRY).name == "within-loop"
        assert three_way(GEOMETRY).name == "three-way"
