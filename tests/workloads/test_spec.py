"""Tests for the ten SPEC-like benchmark generators.

These check the *structural* properties each benchmark is supposed to
have (footprint class, data mix, determinism), not exact miss rates —
those live in the integration tests.
"""

import pytest

from repro.trace.reference import RefKind
from repro.trace.stats import summarize
from repro.workloads.spec import SPEC_BUILDERS, SPEC_DESCRIPTIONS, SPEC_NAMES
from repro.workloads.registry import instruction_trace, mixed_trace


class TestRoster:
    def test_ten_benchmarks(self):
        assert len(SPEC_NAMES) == 10

    def test_names_match_paper_figure_2(self):
        assert SPEC_NAMES == sorted(
            ["doduc", "eqntott", "espresso", "fpppp", "gcc",
             "li", "matrix300", "nasa7", "spice", "tomcatv"]
        )

    def test_every_benchmark_has_description(self):
        assert set(SPEC_DESCRIPTIONS) == set(SPEC_BUILDERS)

    def test_descriptions_match_paper(self):
        assert SPEC_DESCRIPTIONS["gcc"] == "GNU C compiler"
        assert SPEC_DESCRIPTIONS["li"] == "lisp interpreter"
        assert SPEC_DESCRIPTIONS["tomcatv"] == "vectorized mesh generation"


@pytest.mark.parametrize("name", SPEC_NAMES)
class TestEveryBenchmark:
    def test_builds_and_emits(self, name):
        trace = mixed_trace(name, max_refs=5_000)
        assert len(trace) == 5_000

    def test_deterministic(self, name):
        assert mixed_trace(name, 2_000) == mixed_trace(name, 2_000)

    def test_contains_instructions_and_data(self, name):
        counts = mixed_trace(name, 10_000).counts_by_kind()
        assert counts[RefKind.IFETCH] > 0
        assert counts[RefKind.LOAD] > 0

    def test_instruction_addresses_word_aligned(self, name):
        trace = instruction_trace(name, 2_000)
        assert all(r.addr % 4 == 0 for r in trace)


class TestFootprintClasses:
    """The paper's Figure 3 split depends on these size relations."""

    def _ifootprint(self, name):
        return summarize(instruction_trace(name, 50_000)).instruction_footprint_bytes

    def test_small_numeric_kernels_fit_tiny_caches(self):
        for name in ["matrix300", "tomcatv", "nasa7"]:
            assert self._ifootprint(name) < 4 * 1024, name

    def test_large_codes_exceed_reference_cache(self):
        # Their *code range* spans multiple 32KB windows, which is what
        # generates conflicts (the touched footprint may be smaller).
        from repro.workloads.registry import build_program

        for name in ["gcc", "spice"]:
            assert build_program(name).code_size > 64 * 1024, name

    def test_gcc_is_the_largest(self):
        sizes = {name: self._ifootprint(name) for name in ["gcc", "eqntott", "tomcatv"]}
        assert sizes["gcc"] > sizes["eqntott"] > sizes["tomcatv"]


class TestDataMix:
    def test_numeric_codes_have_more_data_refs(self):
        def data_share(name):
            counts = mixed_trace(name, 30_000).counts_by_kind()
            total = sum(counts.values())
            return (counts[RefKind.LOAD] + counts[RefKind.STORE]) / total

        assert data_share("matrix300") > data_share("gcc")

    def test_gcc_has_stores(self):
        counts = mixed_trace("gcc", 30_000).counts_by_kind()
        assert counts[RefKind.STORE] > 0

    def test_eqntott_data_is_loads_dominated(self):
        counts = mixed_trace("eqntott", 30_000).counts_by_kind()
        assert counts[RefKind.LOAD] > counts[RefKind.STORE]
