"""Tests for the data-reference patterns."""

import pytest

from repro.trace.reference import RefKind
from repro.workloads.data_model import (
    PointerChase,
    RandomAccess,
    ScalarAccess,
    StackAccess,
    StridedAccess,
    interleave_refs,
)


class TestScalar:
    def test_same_address_every_time(self):
        scalar = ScalarAccess(0x100)
        assert scalar.emit() == [(0x100, RefKind.LOAD)]
        assert scalar.emit() == [(0x100, RefKind.LOAD)]

    def test_periodic_writes(self):
        scalar = ScalarAccess(0x100, write_every=2)
        kinds = [scalar.emit()[0][1] for _ in range(4)]
        assert kinds == [RefKind.LOAD, RefKind.STORE, RefKind.LOAD, RefKind.STORE]

    def test_reset_restarts_write_phase(self):
        scalar = ScalarAccess(0x100, write_every=2)
        scalar.emit()
        scalar.reset()
        assert scalar.emit()[0][1] is RefKind.LOAD

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            ScalarAccess(-1)


class TestStrided:
    def test_advances_by_stride(self):
        stream = StridedAccess(0, length=64, stride=8, refs_per_visit=2)
        assert [a for a, _ in stream.emit()] == [0, 8]
        assert [a for a, _ in stream.emit()] == [16, 24]

    def test_wraps_at_length(self):
        stream = StridedAccess(0x1000, length=16, stride=8, refs_per_visit=3)
        addrs = [a for a, _ in stream.emit()]
        assert addrs == [0x1000, 0x1008, 0x1000]

    def test_reset(self):
        stream = StridedAccess(0, length=64, stride=8)
        stream.emit()
        stream.reset()
        assert stream.emit()[0][0] == 0

    def test_write_fraction_produces_stores(self):
        stream = StridedAccess(0, length=1024, stride=4, refs_per_visit=4,
                               write_fraction=0.5)
        kinds = [k for _ in range(10) for _, k in stream.emit()]
        stores = sum(1 for k in kinds if k is RefKind.STORE)
        assert 0 < stores < len(kinds)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            StridedAccess(0, length=0)
        with pytest.raises(ValueError):
            StridedAccess(0, length=16, write_fraction=2.0)


class TestRandom:
    def test_addresses_inside_region(self):
        region = RandomAccess(0x1000, size=256, refs_per_visit=4, seed=1)
        for _ in range(20):
            for addr, _ in region.emit():
                assert 0x1000 <= addr < 0x1100

    def test_granule_alignment(self):
        region = RandomAccess(0, size=256, refs_per_visit=8, granule=4, seed=2)
        for addr, _ in region.emit():
            assert addr % 4 == 0

    def test_deterministic_after_reset(self):
        region = RandomAccess(0, size=256, refs_per_visit=4, seed=3)
        first = region.emit()
        region.reset()
        assert region.emit() == first

    def test_region_must_hold_a_granule(self):
        with pytest.raises(ValueError):
            RandomAccess(0, size=2, granule=4)


class TestPointerChase:
    def test_visits_every_node_once_per_cycle(self):
        chase = PointerChase(0, num_nodes=8, node_size=16, hops_per_visit=1, seed=4)
        visited = [chase.emit()[0][0] for _ in range(8)]
        assert len(set(visited)) == 8

    def test_cycle_repeats(self):
        chase = PointerChase(0, num_nodes=4, node_size=16, hops_per_visit=1, seed=5)
        first_cycle = [chase.emit()[0][0] for _ in range(4)]
        second_cycle = [chase.emit()[0][0] for _ in range(4)]
        assert first_cycle == second_cycle

    def test_addresses_are_node_aligned(self):
        chase = PointerChase(0x1000, num_nodes=4, node_size=16, seed=6)
        for _ in range(8):
            for addr, _ in chase.emit():
                assert (addr - 0x1000) % 16 == 0

    def test_reset_restarts_cycle(self):
        chase = PointerChase(0, num_nodes=4, node_size=16, seed=7)
        start = chase.emit()[0][0]
        chase.emit()
        chase.reset()
        assert chase.emit()[0][0] == start

    def test_needs_a_node(self):
        with pytest.raises(ValueError):
            PointerChase(0, num_nodes=0)


class TestStack:
    def test_depth_tracks_push_pop(self):
        stack = StackAccess(0x1000, frame_size=32)
        assert stack.depth == 0
        stack.push()
        stack.push()
        assert stack.depth == 2
        stack.pop()
        assert stack.depth == 1

    def test_pop_at_zero_is_safe(self):
        stack = StackAccess(0x1000)
        stack.pop()
        assert stack.depth == 0

    def test_max_depth_clamps(self):
        stack = StackAccess(0x1000, max_depth=1)
        stack.push()
        stack.push()
        assert stack.depth == 1

    def test_refs_stay_in_current_frame(self):
        stack = StackAccess(0x1000, frame_size=32, refs_per_visit=8, seed=8)
        stack.push()
        for addr, _ in stack.emit():
            assert 0x1000 + 32 <= addr < 0x1000 + 64

    def test_reset_clears_depth(self):
        stack = StackAccess(0x1000)
        stack.push()
        stack.reset()
        assert stack.depth == 0


class TestInterleave:
    def test_data_spread_between_instructions(self):
        instructions = [0, 4, 8, 12]
        data = [(100, RefKind.LOAD), (200, RefKind.STORE)]
        merged = list(interleave_refs(instructions, data))
        assert len(merged) == 6
        # Instructions keep their order; data refs interleave evenly.
        instr_positions = [i for i, (_, k) in enumerate(merged) if k is RefKind.IFETCH]
        assert instr_positions == [0, 1, 3, 4]

    def test_no_instructions_yields_data_only(self):
        data = [(1, RefKind.LOAD)]
        assert list(interleave_refs([], data)) == data

    def test_no_data_yields_instructions_only(self):
        merged = list(interleave_refs([0, 4], []))
        assert merged == [(0, RefKind.IFETCH), (4, RefKind.IFETCH)]

    def test_all_data_emitted(self):
        data = [(i, RefKind.LOAD) for i in range(7)]
        merged = list(interleave_refs([0, 4], data))
        assert len(merged) == 9
