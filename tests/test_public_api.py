"""The public surface: exports exist, README quickstart works."""

import importlib

import pytest

import repro


class TestExports:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.trace",
            "repro.workloads",
            "repro.caches",
            "repro.core",
            "repro.hierarchy",
            "repro.analysis",
            "repro.perf",
            "repro.experiments",
            "repro.cli",
            "repro.store",
            "repro.serve",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.{name}"

    def test_core_types_reachable_from_root(self):
        assert repro.DynamicExclusionCache
        assert repro.CacheGeometry
        assert repro.TwoLevelCache
        assert repro.OptimalDirectMappedCache


class TestReadmeQuickstart:
    def test_quickstart_snippet(self):
        """The code block in README.md, verbatim in spirit."""
        from repro import (
            CacheGeometry,
            DirectMappedCache,
            DynamicExclusionCache,
            OptimalDirectMappedCache,
            instruction_trace,
        )

        geometry = CacheGeometry(size=32 * 1024, line_size=4)
        trace = instruction_trace("gcc", max_refs=20_000)

        conventional = DirectMappedCache(geometry).simulate(trace)
        exclusion = DynamicExclusionCache(geometry).simulate(trace)
        optimal = OptimalDirectMappedCache(geometry).simulate(trace)

        assert optimal.miss_rate <= exclusion.miss_rate <= conventional.miss_rate

    def test_examples_are_importable_as_scripts(self):
        """Every example must at least compile."""
        import pathlib
        import py_compile

        examples = pathlib.Path(__file__).parent.parent / "examples"
        scripts = sorted(examples.glob("*.py"))
        assert len(scripts) >= 5
        for script in scripts:
            py_compile.compile(str(script), doraise=True)
